// Package anyon simulates the topological quantum computer of Preskill
// §7.3–§7.4: qubits are encoded in pairs of nonabelian fluxons
// |u, u⁻¹⟩ labeled by elements of a finite group G (A₅ for
// universality). Logic is performed by the pull-through operation of
// Fig. 20 / Eq. (41) — conjugation of one flux pair by another — and by
// interferometric flux and charge measurements (Figs. 18 and 22), which
// are made fault tolerant by repetition.
package anyon

import (
	"fmt"
	"math"
	"math/rand/v2"

	"ftqc/internal/group"
)

// Register is a quantum state of k flux pairs over the group G: a sparse
// superposition over basis states, each basis state assigning a group
// element (the flux of the pair's first member; the partner carries the
// inverse) to every pair.
type Register struct {
	G     *group.Group
	K     int
	amp   map[string]complex128
	basis map[string][]int // key → element indices (cached decoding)

	// Pulls counts elementary pull-through operations (braiding cost).
	Pulls int
}

// NewRegister creates k flux pairs, each initialized to the calibrated
// flux u0 drawn from the Flux Bureau of Standards (Fig. 19).
func NewRegister(g *group.Group, k int, u0 group.Perm) *Register {
	r := &Register{G: g, K: k, amp: map[string]complex128{}, basis: map[string][]int{}}
	idx := r.elemIndex(u0)
	state := make([]int, k)
	for i := range state {
		state[i] = idx
	}
	r.set(state, 1)
	return r
}

func (r *Register) elemIndex(p group.Perm) int {
	for i, e := range r.G.Elements {
		if e.Equal(p) {
			return i
		}
	}
	panic("anyon: element not in group")
}

func key(state []int) string {
	b := make([]byte, 0, len(state)*3)
	for _, s := range state {
		b = append(b, byte(s), byte(s>>8), ';')
	}
	return string(b)
}

func (r *Register) set(state []int, a complex128) {
	k := key(state)
	if a == 0 {
		delete(r.amp, k)
		return
	}
	r.amp[k] = a
	st := make([]int, len(state))
	copy(st, state)
	r.basis[k] = st
}

// Amplitude returns the amplitude of the basis state where pair i holds
// flux state[i].
func (r *Register) Amplitude(state []int) complex128 { return r.amp[key(state)] }

// Terms returns the number of basis states in superposition.
func (r *Register) Terms() int { return len(r.amp) }

// mapBasis applies a basis permutation f: state → newState (unitary when
// f is injective, which conjugation maps are).
func (r *Register) mapBasis(f func(state []int) []int) {
	newAmp := map[string]complex128{}
	newBasis := map[string][]int{}
	for k, a := range r.amp {
		ns := f(r.basis[k])
		nk := key(ns)
		newAmp[nk] += a
		newBasis[nk] = ns
	}
	r.amp = newAmp
	r.basis = newBasis
}

// PullThrough pulls pair `target` through pair `control` (Fig. 20): the
// control pair is unmodified while the target flux is conjugated,
// u_t → u_c⁻¹ · u_t · u_c (Eq. 41).
func (r *Register) PullThrough(target, control int) {
	r.conjugateBy(target, func(state []int) group.Perm {
		return r.G.Elements[state[control]]
	})
}

// PullThroughInv is the inverse braiding: u_t → u_c · u_t · u_c⁻¹.
func (r *Register) PullThroughInv(target, control int) {
	r.conjugateBy(target, func(state []int) group.Perm {
		return r.G.Elements[state[control]].Inv()
	})
}

// PullThroughFlux pulls the target pair through a calibrated ancilla pair
// of known flux g (withdrawn from the reservoir of §7.4).
func (r *Register) PullThroughFlux(target int, g group.Perm) {
	r.conjugateBy(target, func([]int) group.Perm { return g })
}

func (r *Register) conjugateBy(target int, flux func(state []int) group.Perm) {
	if target < 0 || target >= r.K {
		panic("anyon: register index out of range")
	}
	r.Pulls++
	r.mapBasis(func(state []int) []int {
		g := flux(state)
		u := r.G.Elements[state[target]]
		ns := make([]int, len(state))
		copy(ns, state)
		ns[target] = r.elemIndex(u.Conj(g))
		return ns
	})
}

// MeasureFlux projectively measures the flux of pair i in the group-
// element basis (a perfect Fig. 18 interferometer) and collapses the
// state. It returns the observed element.
func (r *Register) MeasureFlux(i int, rng *rand.Rand) group.Perm {
	// Probability per outcome.
	probs := map[int]float64{}
	for k, a := range r.amp {
		probs[r.basis[k][i]] += real(a)*real(a) + imag(a)*imag(a)
	}
	x := rng.Float64()
	chosen := -1
	for idx, p := range probs {
		if x < p {
			chosen = idx
			break
		}
		x -= p
	}
	if chosen < 0 { // numerical leftovers
		for idx := range probs {
			chosen = idx
			break
		}
	}
	// Collapse and renormalize.
	norm := 0.0
	for k, a := range r.amp {
		if r.basis[k][i] != chosen {
			delete(r.amp, k)
			delete(r.basis, k)
			continue
		}
		norm += real(a)*real(a) + imag(a)*imag(a)
	}
	scale := complex(1/math.Sqrt(norm), 0)
	for k := range r.amp {
		r.amp[k] *= scale
	}
	return r.G.Elements[chosen]
}

// MeasureCharge measures the charge of pair i in the two-dimensional
// flux subspace spanned by {u0, u1} (Fig. 22): it projects onto
// |±⟩ = (|u0⟩ ± |u1⟩)/√2 and returns true for the |−⟩ outcome. Basis
// states with other fluxes are unaffected (they carry distinct charge
// sectors; our computations never mix them).
func (r *Register) MeasureCharge(i int, u0, u1 group.Perm, rng *rand.Rand) bool {
	i0, i1 := r.elemIndex(u0), r.elemIndex(u1)
	// P(−) = Σ |⟨−|ψ⟩|² over pairs of basis states matched on the other
	// registers.
	type bucket struct{ a0, a1 complex128 }
	buckets := map[string]*bucket{}
	for k, a := range r.amp {
		st := r.basis[k]
		if st[i] != i0 && st[i] != i1 {
			panic("anyon: charge measurement outside the computational subspace")
		}
		rest := make([]int, 0, len(st))
		rest = append(rest, st[:i]...)
		rest = append(rest, st[i+1:]...)
		bk := key(rest)
		b := buckets[bk]
		if b == nil {
			b = &bucket{}
			buckets[bk] = b
		}
		if st[i] == i0 {
			b.a0 += a
		} else {
			b.a1 += a
		}
	}
	pMinus := 0.0
	for _, b := range buckets {
		m := (b.a0 - b.a1) / complex(math.Sqrt2, 0)
		pMinus += real(m)*real(m) + imag(m)*imag(m)
	}
	minus := rng.Float64() < pMinus
	// Project: replace (a0, a1) by the component along (|u0⟩ ± |u1⟩)/√2.
	newAmp := map[string]complex128{}
	newBasis := map[string][]int{}
	sign := complex(1, 0)
	if minus {
		sign = -1
	}
	for k, a := range r.amp {
		st := r.basis[k]
		comp := a / 2 // ⟨±|st⟩·(coefficient of |±⟩ expansion)
		if st[i] == i1 {
			comp *= sign
		}
		for _, tgt := range []int{i0, i1} {
			ns := make([]int, len(st))
			copy(ns, st)
			ns[i] = tgt
			c := comp
			if tgt == i1 {
				c *= sign
			}
			nk := key(ns)
			newAmp[nk] += c
			newBasis[nk] = ns
		}
	}
	// Renormalize.
	norm := 0.0
	for _, a := range newAmp {
		norm += real(a)*real(a) + imag(a)*imag(a)
	}
	scale := complex(1/math.Sqrt(norm), 0)
	for k := range newAmp {
		newAmp[k] *= scale
		if newAmp[k] == 0 {
			delete(newAmp, k)
			delete(newBasis, k)
		}
	}
	r.amp = newAmp
	r.basis = newBasis
	return minus
}

// String lists the superposition terms (for debugging and examples).
func (r *Register) String() string {
	out := ""
	for k, a := range r.amp {
		st := r.basis[k]
		out += fmt.Sprintf("(%.3f%+.3fi) |", real(a), imag(a))
		for j, idx := range st {
			if j > 0 {
				out += ","
			}
			out += r.G.Elements[idx].String()
		}
		out += "⟩  "
	}
	return out
}
