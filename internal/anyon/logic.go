package anyon

import (
	"fmt"
	"math"
	"math/rand/v2"

	"ftqc/internal/group"
)

// Computational encoding over G = A₅ (Preskill §7.4, Eq. 45): bit 0 is
// the flux pair |u₀,u₀⁻¹⟩ with u₀ = (125), bit 1 is u₁ = (234) — two
// three-cycles with one object in common.

// A5Encoding carries the calibrated elements of the §7.4 construction.
type A5Encoding struct {
	G      *group.Group
	U0, U1 group.Perm // computational fluxes (Eq. 45)
	V      group.Perm // NOT conjugator: v⁻¹u₀v = u₁, v = (14)(35)
}

// NewA5Encoding builds the standard encoding.
func NewA5Encoding() A5Encoding {
	g := group.A(5)
	enc := A5Encoding{
		G:  g,
		U0: group.Cycle(5, []int{1, 2, 5}),
		U1: group.Cycle(5, []int{2, 3, 4}),
		V:  group.Cycle(5, []int{1, 4}, []int{3, 5}),
	}
	if !enc.U0.Conj(enc.V).Equal(enc.U1) {
		panic("anyon: v=(14)(35) does not exchange the computational fluxes")
	}
	return enc
}

// NOT applies the Fig. 21 NOT gate to register i: pulling the pair
// through a calibrated |v, v⁻¹⟩ pair exchanges u₀ ↔ u₁.
func (e A5Encoding) NOT(r *Register, i int) {
	r.PullThroughFlux(i, e.V)
}

// Bit reads a flux-basis measurement outcome as a classical bit.
func (e A5Encoding) Bit(p group.Perm) (int, error) {
	switch {
	case p.Equal(e.U0):
		return 0, nil
	case p.Equal(e.U1):
		return 1, nil
	}
	return -1, fmt.Errorf("anyon: flux %v is outside the computational basis", p)
}

// Word is a sequence of pull-through tokens applied to the target pair:
// either a pull through a calibrated ancilla of known flux, or a
// (possibly reversed) pull through a control pair. The net conjugator is
// the ordered product of token fluxes.
type Word []Token

// Token is one elementary pull-through.
type Token struct {
	Ctrl bool       // pull through the control pair instead of an ancilla
	Inv  bool       // reverse braiding direction (conjugate by the inverse)
	G    group.Perm // calibrated flux when Ctrl is false
}

// value evaluates the word's net conjugator when the control pair holds
// flux x.
func (w Word) value(x group.Perm) group.Perm {
	acc := group.Identity(len(x))
	for _, t := range w {
		g := t.G
		if t.Ctrl {
			g = x
		}
		if t.Inv {
			g = g.Inv()
		}
		acc = acc.Mul(g)
	}
	return acc
}

// inverse returns the word whose conjugator is the inverse.
func (w Word) inverse() Word {
	out := make(Word, len(w))
	for i, t := range w {
		t.Inv = !t.Inv
		out[len(w)-1-i] = t
	}
	return out
}

// apply performs the word's pulls on the register.
func (w Word) apply(r *Register, target, control int) {
	for _, t := range w {
		switch {
		case t.Ctrl && t.Inv:
			r.PullThroughInv(target, control)
		case t.Ctrl:
			r.PullThrough(target, control)
		case t.Inv:
			r.PullThroughFlux(target, t.G.Inv())
		default:
			r.PullThroughFlux(target, t.G)
		}
	}
}

// ToffoliWitness holds the two control words of the conjugation Toffoli:
// AWord evaluates to the identity on u₀ and to A₁ on u₁; BWord likewise to
// B₁, with [A₁, B₁] = v. The full gate applies the commutator word
// AWord⁻¹·BWord⁻¹·AWord·BWord to the target, which conjugates it by v
// exactly when both controls hold u₁ — a Toffoli built purely from
// pull-through operations, our reconstruction of the unpublished
// construction of ref. 65 (which quotes 16 pulls and 6 ancilla pairs;
// the systematic search below finds a 28-pull word — same constant-cost
// shape, somewhat longer).
type ToffoliWitness struct {
	AWord Word // references control A
	BWord Word // references control B
}

// PullCost returns the number of elementary pull-throughs of the gate.
func (w ToffoliWitness) PullCost() int {
	return 2 * (len(w.AWord) + len(w.BWord))
}

// FindToffoliWitness searches A₅ for the witness words. It first finds a
// commutator decomposition [A₁, B₁] = v, then realizes A₁ by a
// two-occurrence control word x·r·x·t (whose reachable values include
// the 3-cycles) and B₁ by a three-occurrence word x·r₁·x·r₂·x·t (which
// also reaches the order-2 class), each wrapped in a conjugating bookend.
func (e A5Encoding) FindToffoliWitness() (ToffoliWitness, error) {
	id := group.Identity(5)
	// Step 1: commutator decompositions of v.
	for _, a1 := range e.G.Elements {
		if a1.IsIdentity() {
			continue
		}
		for _, b1 := range e.G.Elements {
			if b1.IsIdentity() || !group.Commutator(a1, b1).Equal(e.V) {
				continue
			}
			aw, okA := e.findWord2(a1)
			bw, okB := e.findWord3(b1)
			if okA && okB {
				// Sanity: verify the four branch values.
				w := ToffoliWitness{AWord: aw, BWord: bw}
				if !aw.value(e.U0).Equal(id) || !aw.value(e.U1).Equal(a1) ||
					!bw.value(e.U0).Equal(id) || !bw.value(e.U1).Equal(b1) {
					continue
				}
				return w, nil
			}
		}
	}
	return ToffoliWitness{}, fmt.Errorf("anyon: no commutator witness found")
}

// findWord2 searches for a word wrap·(x·r·x·t)·wrap⁻¹ equal to target on
// x = u₁ and to e on x = u₀.
func (e A5Encoding) findWord2(target group.Perm) (Word, bool) {
	for _, r := range e.G.Elements {
		t := e.U0.Mul(r).Mul(e.U0).Inv() // forces the u₀ branch to e
		val := e.U1.Mul(r).Mul(e.U1).Mul(t)
		for _, wrap := range e.G.Elements {
			if wrap.Mul(val).Mul(wrap.Inv()).Equal(target) {
				return Word{
					{G: wrap},
					{Ctrl: true},
					{G: r},
					{Ctrl: true},
					{G: t},
					{G: wrap.Inv()},
				}, true
			}
		}
	}
	return nil, false
}

// findWord3 is findWord2 with three control occurrences, needed to reach
// the order-2 conjugacy class.
func (e A5Encoding) findWord3(target group.Perm) (Word, bool) {
	for _, r1 := range e.G.Elements {
		for _, r2 := range e.G.Elements {
			t := e.U0.Mul(r1).Mul(e.U0).Mul(r2).Mul(e.U0).Inv()
			val := e.U1.Mul(r1).Mul(e.U1).Mul(r2).Mul(e.U1).Mul(t)
			if val.Order() != target.Order() {
				continue
			}
			for _, wrap := range e.G.Elements {
				if wrap.Mul(val).Mul(wrap.Inv()).Equal(target) {
					return Word{
						{G: wrap},
						{Ctrl: true},
						{G: r1},
						{Ctrl: true},
						{G: r2},
						{Ctrl: true},
						{G: t},
						{G: wrap.Inv()},
					}, true
				}
			}
		}
	}
	return nil, false
}

// Toffoli applies the conjugation-word Toffoli: the target pair is
// conjugated by the commutator word, which evaluates to the u₀↔u₁
// exchange v exactly when both controls carry u₁ and to the identity
// otherwise. All operations are pull-throughs (Fig. 20); the controls are
// never modified.
func (e A5Encoding) Toffoli(r *Register, w ToffoliWitness, ctrlA, ctrlB, target int) {
	// W = A⁻¹ B⁻¹ A B applied in order.
	withCtrl := func(word Word, ctrl int) {
		word.apply(r, target, ctrl)
	}
	withCtrl(w.AWord.inverse(), ctrlA)
	withCtrl(w.BWord.inverse(), ctrlB)
	withCtrl(w.AWord, ctrlA)
	withCtrl(w.BWord, ctrlB)
}

// ToffoliPullCount is the pull cost of the systematic construction; the
// unpublished ref. 65 word achieves 16.
const ToffoliPullCount = 28

// --- fault-tolerant interferometric measurement (Figs. 18, 22) ---

// InterferometerConfidence returns the probability that a majority vote
// over n independent interferometer passes, each erring with probability
// eta, reports the wrong flux/charge — the repetition fault tolerance of
// §7.3 ("if we have many charged projectiles and perform the measurement
// repeatedly, we can determine the flux with very high statistical
// confidence").
func InterferometerConfidence(eta float64, passes int) float64 {
	// P(majority wrong) = Σ_{k>n/2} C(n,k) ηᵏ(1−η)^{n−k}; ties broken
	// against us (conservative).
	wrong := 0.0
	for k := (passes + 1) / 2; k <= passes; k++ {
		if 2*k == passes {
			continue
		}
		wrong += binomPMF(passes, k, eta)
	}
	if passes%2 == 0 {
		wrong += binomPMF(passes, passes/2, eta) // tie counts as failure
	}
	return wrong
}

func binomPMF(n, k int, p float64) float64 {
	logC := 0.0
	for i := 0; i < k; i++ {
		logC += math.Log(float64(n-i)) - math.Log(float64(i+1))
	}
	return math.Exp(logC + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p))
}

// NoisyFluxMeasurement simulates a repeated interferometric flux readout:
// the true flux is read through `passes` noisy passes (each reporting the
// wrong basis outcome with probability eta) and decided by majority.
// Returns whether the final decision was wrong.
func NoisyFluxMeasurement(truthBit int, eta float64, passes int, rng *rand.Rand) bool {
	votes := 0
	for i := 0; i < passes; i++ {
		read := truthBit
		if rng.Float64() < eta {
			read = 1 - read
		}
		if read == 1 {
			votes++
		}
	}
	decided := 0
	if 2*votes > passes {
		decided = 1
	} else if 2*votes == passes {
		// Tie: decide by coin, half the time wrong.
		if rng.IntN(2) == 1 {
			decided = 1
		}
	}
	return decided != truthBit
}
