package anyon

import (
	"math"
	"math/rand/v2"
	"testing"

	"ftqc/internal/group"
)

func TestNOTGate(t *testing.T) {
	e := NewA5Encoding()
	r := NewRegister(e.G, 1, e.U0)
	e.NOT(r, 0)
	got := r.MeasureFlux(0, rand.New(rand.NewPCG(1, 2)))
	if bit, _ := e.Bit(got); bit != 1 {
		t.Fatalf("NOT|0⟩ read %v", got)
	}
	e.NOT(r, 0)
	got = r.MeasureFlux(0, rand.New(rand.NewPCG(3, 4)))
	if bit, _ := e.Bit(got); bit != 0 {
		t.Fatal("NOT² must be identity")
	}
}

func TestPullThroughConjugates(t *testing.T) {
	// Eq. 41: pulling pair 1 through pair 0 conjugates pair 1's flux by
	// pair 0's flux and leaves pair 0 alone.
	e := NewA5Encoding()
	r := NewRegister(e.G, 2, e.U0)
	// Set pair 1 to u1 via NOT.
	e.NOT(r, 1)
	r.PullThrough(1, 0)
	rng := rand.New(rand.NewPCG(5, 6))
	f0 := r.MeasureFlux(0, rng)
	f1 := r.MeasureFlux(1, rng)
	if !f0.Equal(e.U0) {
		t.Fatal("control pair was modified")
	}
	if !f1.Equal(e.U1.Conj(e.U0)) {
		t.Fatalf("target flux %v, want %v", f1, e.U1.Conj(e.U0))
	}
}

func TestPullThroughInvUndoes(t *testing.T) {
	e := NewA5Encoding()
	r := NewRegister(e.G, 2, e.U0)
	e.NOT(r, 1)
	r.PullThrough(1, 0)
	r.PullThroughInv(1, 0)
	f1 := r.MeasureFlux(1, rand.New(rand.NewPCG(7, 8)))
	if !f1.Equal(e.U1) {
		t.Fatal("inverse pull did not undo the conjugation")
	}
}

func TestToffoliWitnessExists(t *testing.T) {
	e := NewA5Encoding()
	w, err := e.FindToffoliWitness()
	if err != nil {
		t.Fatal(err)
	}
	// Branch values: identity on u0, and a commutator pair equal to v on u1.
	id := group.Identity(5)
	a0 := wordValue(w.AWord, e.U0)
	b0 := wordValue(w.BWord, e.U0)
	if !a0.Equal(id) || !b0.Equal(id) {
		t.Fatal("witness words must vanish on the 0 branch")
	}
	a1 := wordValue(w.AWord, e.U1)
	b1 := wordValue(w.BWord, e.U1)
	if !group.Commutator(a1, b1).Equal(e.V) {
		t.Fatal("witness does not satisfy [A1,B1] = v")
	}
}

func wordValue(w Word, x group.Perm) group.Perm { return w.value(x) }

func TestToffoliTruthTable(t *testing.T) {
	e := NewA5Encoding()
	w, err := e.FindToffoliWitness()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(9, 10))
	for in := 0; in < 8; in++ {
		r := NewRegister(e.G, 3, e.U0)
		for q := 0; q < 3; q++ {
			if in>>uint(q)&1 == 1 {
				e.NOT(r, q)
			}
		}
		e.Toffoli(r, w, 0, 1, 2)
		want := in
		if in&3 == 3 {
			want ^= 4
		}
		got := 0
		for q := 0; q < 3; q++ {
			b, err := e.Bit(r.MeasureFlux(q, rng))
			if err != nil {
				t.Fatalf("input %03b: %v", in, err)
			}
			got |= b << uint(q)
		}
		if got != want {
			t.Fatalf("input %03b: got %03b want %03b", in, got, want)
		}
	}
}

func TestToffoliOnSuperposition(t *testing.T) {
	// Charge measurement prepares (|0⟩±|1⟩)/√2 on a control pair (§7.3);
	// the Toffoli must act coherently on the superposition.
	e := NewA5Encoding()
	w, err := e.FindToffoliWitness()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(11, 12))
	r := NewRegister(e.G, 3, e.U0)
	e.NOT(r, 1) // control B = 1
	minus := r.MeasureCharge(0, e.U0, e.U1, rng)
	if r.Terms() != 2 {
		t.Fatalf("charge measurement should create a 2-term superposition, got %d", r.Terms())
	}
	e.Toffoli(r, w, 0, 1, 2)
	// The state is now (|0,1,0⟩ ± |1,1,1⟩)/√2: measuring control A and
	// target must give perfectly correlated bits.
	_ = minus
	a, _ := e.Bit(r.MeasureFlux(0, rng))
	c, _ := e.Bit(r.MeasureFlux(2, rng))
	if a != c {
		t.Fatalf("Toffoli on superposition: control %d target %d must correlate", a, c)
	}
}

func TestChargeMeasurementStatistics(t *testing.T) {
	// On the flux eigenstate |u0⟩ the charge reads ± with probability 1/2
	// each, and afterwards the flux is an equal superposition.
	e := NewA5Encoding()
	minusCount := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		rng := rand.New(rand.NewPCG(uint64(i), 13))
		r := NewRegister(e.G, 1, e.U0)
		if r.MeasureCharge(0, e.U0, e.U1, rng) {
			minusCount++
		}
		if r.Terms() != 2 {
			t.Fatalf("charge projection should leave 2 flux terms, got %d", r.Terms())
		}
	}
	if minusCount < trials/4 || minusCount > 3*trials/4 {
		t.Fatalf("charge outcomes biased: %d/%d minus", minusCount, trials)
	}
}

func TestChargeThenFluxIsCoin(t *testing.T) {
	// §7.3: the interferometer projects a flux eigenstate onto |±⟩; a
	// subsequent flux measurement yields u0 or u1 with probability 1/2.
	e := NewA5Encoding()
	ones := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		rng := rand.New(rand.NewPCG(uint64(i), 14))
		r := NewRegister(e.G, 1, e.U0)
		r.MeasureCharge(0, e.U0, e.U1, rng)
		b, err := e.Bit(r.MeasureFlux(0, rng))
		if err != nil {
			t.Fatal(err)
		}
		ones += b
	}
	if ones < trials/4 || ones > 3*trials/4 {
		t.Fatalf("flux after charge measurement biased: %d/%d", ones, trials)
	}
}

func TestChargeMeasurementRepeatable(t *testing.T) {
	e := NewA5Encoding()
	rng := rand.New(rand.NewPCG(15, 16))
	r := NewRegister(e.G, 1, e.U0)
	first := r.MeasureCharge(0, e.U0, e.U1, rng)
	for i := 0; i < 5; i++ {
		if r.MeasureCharge(0, e.U0, e.U1, rng) != first {
			t.Fatal("repeated charge measurement changed its mind")
		}
	}
}

func TestInterferometerConfidence(t *testing.T) {
	// Repetition suppresses the readout error exponentially.
	e1 := InterferometerConfidence(0.2, 1)
	e15 := InterferometerConfidence(0.2, 15)
	e51 := InterferometerConfidence(0.2, 51)
	if !(e51 < e15 && e15 < e1) {
		t.Fatalf("no suppression: %v %v %v", e1, e15, e51)
	}
	if e51 > 1e-4 {
		t.Fatalf("51 passes at η=0.2 should be very reliable, got %v", e51)
	}
	// Cross-check against Monte Carlo.
	rng := rand.New(rand.NewPCG(17, 18))
	wrong := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if NoisyFluxMeasurement(1, 0.2, 15, rng) {
			wrong++
		}
	}
	mc := float64(wrong) / trials
	if math.Abs(mc-e15) > 5*math.Sqrt(e15/(trials))+0.005 {
		t.Fatalf("MC %v vs analytic %v", mc, e15)
	}
}

func TestToffoliPullCost(t *testing.T) {
	// The register counts elementary pull-throughs; the systematic word
	// costs a constant 28 pulls (ref. 65 quotes 16 for its unpublished
	// word — same constant-cost shape).
	e := NewA5Encoding()
	w, err := e.FindToffoliWitness()
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegister(e.G, 3, e.U0)
	e.Toffoli(r, w, 0, 1, 2)
	if r.Pulls != w.PullCost() || r.Pulls != ToffoliPullCount {
		t.Fatalf("Toffoli used %d pull-throughs, witness claims %d, const %d",
			r.Pulls, w.PullCost(), ToffoliPullCount)
	}
}

func TestNOTCostsOnePull(t *testing.T) {
	e := NewA5Encoding()
	r := NewRegister(e.G, 1, e.U0)
	e.NOT(r, 0)
	if r.Pulls != 1 {
		t.Fatalf("NOT used %d pulls", r.Pulls)
	}
}
