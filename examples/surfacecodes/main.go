// Surface-code families behind one decoder: the toric code needs a
// torus, but hardware is a plane. The planar code trades the torus for
// rough and smooth boundaries (error chains may end there, absorbed by
// a virtual boundary detector), and the rotated code shaves the layout
// down to d² data qubits — half the planar bill at equal distance.
// All three implement the same surface.Code contract, so the identical
// union-find machinery decodes them in 2D, over space-time volumes,
// and through streaming windows; only the detector graph changes.
package main

import (
	"fmt"

	"ftqc"
)

func main() {
	fmt.Println("== surface-code families: one contract, three layouts ==")

	fmt.Println("\nqubit overhead per distance (data + measure ancillas):")
	fmt.Printf("%-4s %-16s %-16s %-16s\n", "d", "toric (2d²)", "planar (d²+(d−1)²)", "rotated (d²)")
	for _, d := range []int{3, 5, 7, 9} {
		row := make([]string, 0, 3)
		for _, c := range []ftqc.SurfaceCode{ftqc.ToricCode(d), ftqc.PlanarCode(d), ftqc.RotatedCode(d)} {
			row = append(row, fmt.Sprintf("%d (+%d)", c.Qubits(), 2*c.Checks()))
		}
		fmt.Printf("%-4d %-16s %-16s %-16s\n", d, row[0], row[1], row[2])
	}

	const samples = 4000
	fmt.Println("\n2D memory at p = 0.05 (perfect measurement, union-find):")
	fmt.Printf("%-10s %-12s %-12s %-12s\n", "family", "d=3", "d=5", "d=7")
	for _, family := range []func(int) ftqc.SurfaceCode{ftqc.ToricCode, ftqc.PlanarCode, ftqc.RotatedCode} {
		name := family(3).CodeName()
		fmt.Printf("%-10s", name)
		for _, d := range []int{3, 5, 7} {
			r := ftqc.SurfaceMemory(family(d), 0.05, samples, 11)
			fmt.Printf(" %-12.4e", r.FailRate())
		}
		fmt.Println()
	}

	fmt.Println("\ncircuit-level memory, T = d noisy extraction rounds (eps = 0.004):")
	fmt.Println("every family runs its own CNOT schedule; hook faults become diagonal")
	fmt.Println("edges, boundary-truncated where a qubit has a single reader")
	fmt.Printf("%-10s %-12s %-12s\n", "family", "d=3", "d=5")
	for _, family := range []func(int) ftqc.SurfaceCode{ftqc.ToricCode, ftqc.PlanarCode, ftqc.RotatedCode} {
		name := family(3).CodeName()
		fmt.Printf("%-10s", name)
		for _, d := range []int{3, 5} {
			r := ftqc.SurfaceCircuitMemory(family(d), d, 0.004, samples, 13)
			fmt.Printf(" %-12.4e", r.FailRate())
		}
		fmt.Println()
	}

	fmt.Println("\nstreaming the rotated code (d = 5, eps = 0.003, T = 40 rounds,")
	fmt.Println("sliding window): open boundaries ground on the same virtual node")
	fmt.Println("the window already uses for its open future edge")
	r, err := ftqc.StreamingSurfaceCircuitMemory(ftqc.RotatedCode(5), 40, 0.003, samples/4, 17)
	if err != nil {
		panic(err)
	}
	fmt.Printf("family=%s W=%d commit=%d: fail (any) %.4e over %d samples\n",
		r.Code, r.Window, r.Commit, r.FailRate(), r.Samples)
}
