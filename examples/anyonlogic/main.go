// Anyon logic: classical and quantum logic on nonabelian A₅ fluxon pairs
// (Preskill §7.3–§7.4): the pull-through NOT of Fig. 21, a Toffoli built
// entirely from pull-through operations, and superpositions prepared by
// charge measurement (Fig. 22).
package main

import (
	"fmt"
	"math/rand/v2"

	"ftqc"
	"ftqc/internal/anyon"
)

func main() {
	rng := rand.New(rand.NewPCG(60, 5))
	enc, reg := ftqc.NewAnyonComputer(3)
	fmt.Println("== nonabelian fluxon logic over A5 ==")
	fmt.Printf("bit 0 ↔ flux %v, bit 1 ↔ flux %v (Eq. 45)\n", enc.U0, enc.U1)
	fmt.Printf("NOT = pull through a calibrated %v pair (Fig. 21)\n\n", enc.V)

	fmt.Println("NOT on register 0:")
	enc.NOT(reg, 0)
	f := reg.MeasureFlux(0, rng)
	fmt.Printf("  flux reads %v\n\n", f)

	w, err := enc.FindToffoliWitness()
	if err != nil {
		panic(err)
	}
	fmt.Printf("Toffoli word: %d elementary pull-throughs (ref. 65: 16)\n", w.PullCost())
	fmt.Println("Toffoli on |1,1,0⟩:")
	reg2 := anyon.NewRegister(enc.G, 3, enc.U0)
	enc.NOT(reg2, 0)
	enc.NOT(reg2, 1)
	enc.Toffoli(reg2, w, 0, 1, 2)
	bits := [3]int{}
	for q := 0; q < 3; q++ {
		bits[q], _ = enc.Bit(reg2.MeasureFlux(q, rng))
	}
	fmt.Printf("  result: |%d,%d,%d⟩ (target flipped)\n\n", bits[0], bits[1], bits[2])

	fmt.Println("charge measurement creates superpositions (Fig. 22):")
	reg3 := anyon.NewRegister(enc.G, 1, enc.U0)
	minus := reg3.MeasureCharge(0, enc.U0, enc.U1, rng)
	fmt.Printf("  charge outcome: %s; state now %d flux terms\n", pm(minus), reg3.Terms())
	fmt.Printf("  state: %s\n\n", reg3)

	fmt.Println("fault-tolerant readout by repetition (η=0.2 per pass):")
	for _, n := range []int{1, 15, 51} {
		fmt.Printf("  %2d passes → wrong with prob %.2e\n", n, anyon.InterferometerConfidence(0.2, n))
	}
}

func pm(minus bool) string {
	if minus {
		return "−"
	}
	return "+"
}
