// Factoring: size the fault-tolerant machine of Preskill §6 that factors
// a 130-digit (432-bit) number with Shor's algorithm.
package main

import (
	"fmt"

	"ftqc"
)

func main() {
	fmt.Println("== machine sizing for factoring RSA-432 (Preskill §6) ==")
	conc, block55, err := ftqc.FactoringMachines(432, 1e4)
	if err != nil {
		fmt.Println("concatenated machine:", err)
	} else {
		fmt.Println(conc)
	}
	fmt.Println(block55)
	fmt.Println()
	fmt.Println("paper's numbers: 2160 logical qubits, ~3e9 Toffolis;")
	fmt.Println("  concatenated Steane: eps~1e-6, L=3, block 343, ~1e6 qubits;")
	fmt.Println("  Steane block-55 (ref. 48): eps~1e-5, ~4e5 qubits.")

	fmt.Println("\nconcatenation flow (Eq. 33 with the paper's A=21):")
	f := ftqc.PaperFlow()
	fmt.Printf("threshold 1/A = %.3e\n", f.Threshold())
	p := 1e-2
	for l := 0; l <= 4; l++ {
		fmt.Printf("  level %d: block %4d qubits, p_L = %.3e\n", l, pow7(l), f.AtLevel(p, l))
	}
}

func pow7(l int) int {
	n := 1
	for i := 0; i < l; i++ {
		n *= 7
	}
	return n
}
