// Toric memory: Kitaev's passive quantum memory (Preskill §7.1) — the
// logical error rate falls exponentially with the code distance below
// threshold, mirroring the e^{−mL} tunneling suppression. The union-find
// decoder (near-linear in the syndrome) carries the sweep out to L = 32,
// distances the exponential bitmask matcher could never reach; the
// polynomial exact matcher cross-checks the small sizes.
package main

import (
	"fmt"
	"math"

	"ftqc"
)

func main() {
	fmt.Println("== toric-code passive memory (§7.1) ==")
	const p = 0.04
	const samples = 20000
	fmt.Printf("flip probability p = %.2f per edge\n", p)
	fmt.Printf("%-6s %-10s %-14s %-14s\n", "L", "qubits", "union-find", "exact MWPM")
	prev := 0.0
	for _, l := range []int{3, 5, 7, 9, 13} {
		r := ftqc.ToricMemory(l, p, samples, uint64(7+l))
		ex := ftqc.ToricMemoryWith(l, p, ftqc.ToricDecoderExact, samples, uint64(7+l))
		lat := ftqc.NewToricLattice(l)
		fmt.Printf("%-6d %-10d %-14.4e %-14.4e", l, lat.Qubits(), r.FailRate(), ex.FailRate())
		if prev > 0 && r.FailRate() > 0 {
			fmt.Printf("   (×%.2f per step)", r.FailRate()/prev)
		}
		fmt.Println()
		prev = r.FailRate()
	}
	fmt.Println("\nlarge distances (union-find only — matching decoders are impractical here):")
	fmt.Printf("%-6s %-10s %-14s\n", "L", "qubits", "logical fail")
	for _, l := range []int{16, 24, 32} {
		r := ftqc.ToricMemory(l, p, samples/4, uint64(7+l))
		lat := ftqc.NewToricLattice(l)
		fmt.Printf("%-6d %-10d %-14.4e\n", l, lat.Qubits(), r.FailRate())
	}
	fmt.Println("\ntunneling estimate e^{-mL} for comparison (m=1):")
	for _, l := range []int{3, 5, 7, 9} {
		fmt.Printf("  L=%d: %.2e\n", l, math.Exp(-float64(l)))
	}
	fmt.Println("\n'if the quasiparticles are kept far apart, the probability of an")
	fmt.Println(" error afflicting the encoded information will be extremely low'")
}
