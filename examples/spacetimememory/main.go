// Space-time memory: the toric code decoded the way real hardware must
// — with syndrome measurements that lie. T rounds of noisy extraction
// turn decoding into matching on a 3D space-time volume (time-like
// edges absorb measurement errors, weighted by log-likelihood), and the
// threshold drops from the ~10% of the perfect-measurement idealization
// to the few-percent sustained value, recovered here as the crossing of
// the L=4 and L=8 failure curves at p = q.
package main

import (
	"fmt"
	"math"

	"ftqc"
)

func main() {
	fmt.Println("== noisy syndrome extraction: 3D space-time decoding ==")
	const samples = 4000

	fmt.Println("\nperfect vs noisy measurements (L=6, T=6, p=0.02):")
	fmt.Printf("%-26s %-12s %-12s %-12s\n", "", "fail (any)", "bit-flip", "phase-flip")
	clean := ftqc.SpacetimeMemory(6, 1, 0.02, 0, samples, 31)
	noisy := ftqc.SpacetimeMemory(6, 6, 0.02, 0.02, samples, 32)
	fmt.Printf("%-26s %-12.4e %-12.4e %-12.4e\n", "q=0, one round (2D)", clean.FailRate(), clean.FailRateX(), clean.FailRateZ())
	fmt.Printf("%-26s %-12.4e %-12.4e %-12.4e\n", "q=p, six rounds (3D)", noisy.FailRate(), noisy.FailRateX(), noisy.FailRateZ())

	fmt.Println("\nsustained p=q sweep, rounds = L (union-find, weighted 3D graphs):")
	grid := []float64{0.01, 0.015, 0.02, 0.025, 0.03, 0.04, 0.05}
	cross, pts := ftqc.SustainedThreshold(4, 8, grid, samples, 33)
	fmt.Printf("%-8s %-14s %-14s\n", "p=q", "L=4 (T=4)", "L=8 (T=8)")
	for _, pt := range pts {
		fmt.Printf("%-8.3f %-14.4e %-14.4e\n", pt.P, pt.Small.FailRate(), pt.Large.FailRate())
	}
	if math.IsNaN(cross) {
		fmt.Println("no crossing on this grid")
	} else {
		fmt.Printf("sustained threshold ≈ %.3f (perfect-measurement toric threshold is ~0.10)\n", cross)
	}

	fmt.Println("\n'quantum error correction works even when the syndrome")
	fmt.Println(" measurements themselves are faulty — if you repeat them'")
}
