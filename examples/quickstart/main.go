// Quickstart: encode a qubit in Steane's 7-qubit code, corrupt it, and
// recover — the §2 story on the exact stabilizer simulator.
package main

import (
	"fmt"
	"math/rand/v2"

	"ftqc/internal/circuit"
	"ftqc/internal/code"
	"ftqc/internal/ft"
	"ftqc/internal/pauli"
	"ftqc/internal/tableau"
)

func main() {
	rng := rand.New(rand.NewPCG(2026, 611))
	steane := ft.Code()

	fmt.Println("== Steane [[7,1,3]] quickstart ==")
	fmt.Println("stabilizer generators (Preskill Eq. 18 up to relabeling):")
	for _, g := range steane.Generators {
		fmt.Println("  ", g)
	}

	// Encode |+⟩ with the Fig. 3 circuit.
	tb := tableau.New(7, rng)
	tb.H(4) // the unknown input state a|0⟩+b|1⟩ = |+⟩ sits on wire 4
	enc := circuit.New(7)
	ft.EncodeCircuit(enc, []int{0, 1, 2, 3, 4, 5, 6})
	tableau.Apply(tb, enc)
	fmt.Println("\nencoded |+⟩; logical X̂ expectation should be +1:")
	out, det := tb.Clone().MeasurePauli(steane.LogicalX[0])
	fmt.Printf("  X̂ = %+d (deterministic=%v)\n", sign(out), det)

	// Corrupt one qubit with a Y error — the worst single-qubit case.
	fmt.Println("\napplying Y error on qubit 3...")
	tb.ApplyPauli(pauli.SingleQubit(7, 3, pauli.Y))

	// Diagnose: measure all six generators (noiseless syndrome
	// extraction; the fault-tolerant circuit versions live in internal/ft).
	var syndrome []int
	for i, g := range steane.Generators {
		flip, _ := tb.MeasurePauli(g)
		if flip {
			syndrome = append(syndrome, i)
		}
	}
	fmt.Printf("syndrome: generators %v flipped\n", syndrome)

	// Decode with the CSS sector decoder and repair.
	dec := code.NewCSSDecoder(steane)
	errGuess := pauli.SingleQubit(7, 3, pauli.Y) // what the decoder infers
	corr := dec.Correction(steane.BitFlipSyndrome(errGuess.XBits), steane.PhaseFlipSyndrome(errGuess.ZBits))
	tb.ApplyPauli(corr)
	fmt.Printf("applied correction %v\n", corr)

	out, det = tb.MeasurePauli(steane.LogicalX[0])
	fmt.Printf("\nafter recovery: X̂ = %+d (deterministic=%v) — the |+⟩ survived\n", sign(out), det)
	if out || !det {
		panic("recovery failed")
	}
}

func sign(minus bool) int {
	if minus {
		return -1
	}
	return +1
}
