// Memory: hold one logical qubit for many recovery rounds and compare
// with an unprotected qubit — the fidelity story of Preskill Eq. (14),
// using the public facade API.
package main

import (
	"fmt"

	"ftqc"
)

func main() {
	cfg := ftqc.DefaultECConfig()
	const rounds = 10
	const samples = 20000
	fmt.Printf("== logical memory: %d rounds of Steane recovery ==\n", rounds)
	fmt.Printf("%-10s %-14s %-14s %-14s\n", "eps", "unencoded", "encoded", "encoded/ideal")
	for _, eps := range []float64{3e-4, 1e-3, 3e-3} {
		storage := ftqc.NoiseParams{Storage: eps}
		noisy := ftqc.MemoryExperiment(ftqc.MethodSteane, storage, ftqc.UniformNoise(eps), cfg, rounds, samples, 1)
		ideal := ftqc.MemoryExperiment(ftqc.MethodSteane, storage, ftqc.NoiseParams{}, cfg, rounds, samples, 2)
		// Unencoded baseline: failure ≈ rounds·eps.
		raw := 1.0
		for i := 0; i < rounds; i++ {
			raw *= 1 - eps
		}
		fmt.Printf("%-10.1e %-14.4e %-14.4e %-14.4e\n", eps, 1-raw, noisy.FailRate(), ideal.FailRate())
	}
	fmt.Println()
	fmt.Println("unencoded decays linearly in ε; with flawless recovery the encoded")
	fmt.Println("block fails at O(ε²) (Eq. 14); noisy recovery adds its own O(ε²)")
	fmt.Println("contribution — coding pays once ε is below the pseudothreshold.")
}
