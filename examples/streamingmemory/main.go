// Streaming memory: decoding forever in constant space. The space-time
// experiment (examples/spacetimememory) materializes all T rounds
// before decoding, so holding a qubit longer costs more memory — a real
// quantum memory cannot work that way. Here the decoder sees syndrome
// layers as they arrive, decodes a sliding W-round window through a
// long-lived worker-pool service, commits corrections behind the
// window into a running Pauli frame, and keeps only O(L²·W) bits per
// shot no matter how long the memory runs. A 10,000-round hold costs
// the same resident footprint as a 100-round one.
package main

import (
	"fmt"

	"ftqc"
)

func main() {
	fmt.Println("== streaming windowed decoding: sustained operation ==")
	const samples = 4000

	fmt.Println("\nwindowed vs whole-volume decode (L=4, T=16, p=q=0.02):")
	fmt.Printf("%-34s %-12s %-12s %-12s\n", "", "fail (any)", "bit-flip", "phase-flip")
	vol := ftqc.SpacetimeMemory(4, 16, 0.02, 0.02, samples, 41)
	str, err := ftqc.StreamingMemory(4, 16, 0.02, 0.02, samples, 42)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-34s %-12.4e %-12.4e %-12.4e\n", "whole volume (17 layers at once)", vol.FailRate(), vol.FailRateX(), vol.FailRateZ())
	fmt.Printf("%-34s %-12.4e %-12.4e %-12.4e\n",
		fmt.Sprintf("window W=%d, commit %d (slides)", str.Window, str.Commit), str.FailRate(), str.FailRateX(), str.FailRateZ())

	fmt.Println("\nthe window height is a latency/accuracy knob (L=4, T=16, p=q=0.02):")
	fmt.Printf("%-10s %-10s %-12s\n", "window", "commit", "fail (any)")
	for _, w := range []int{2, 4, 8, 12} {
		r, err := ftqc.StreamingMemoryWith(4, 16, 0.02, 0.02, w, w/2, samples, 43)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-10d %-10d %-12.4e\n", r.Window, r.Commit, r.FailRate())
	}

	fmt.Println("\nholding the memory 16× longer (L=4, p=q=0.015, W=8):")
	fmt.Printf("%-10s %-14s %-18s\n", "rounds", "fail (any)", "fail per round")
	for _, rounds := range []int{16, 64, 256} {
		r, err := ftqc.StreamingMemoryWith(4, rounds, 0.015, 0.015, 8, 4, samples, 44)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-10d %-14.4e %-18.4e\n", rounds, r.FailRate(), r.FailRate()/float64(rounds))
	}
	fmt.Println("(the failure rate per round is the sustained figure of merit; the")
	fmt.Println(" decoder's resident window is identical for every row)")

	fmt.Println("\nsustained p=q threshold measured in streaming operation (T=4L, W=2L):")
	grid := []float64{0.01, 0.015, 0.02, 0.025, 0.03, 0.04}
	cross, pts := ftqc.StreamingSustainedThreshold(3, 5, grid, samples, 45)
	fmt.Printf("%-8s %-14s %-14s\n", "p=q", "L=3 (T=12)", "L=5 (T=20)")
	for _, pt := range pts {
		fmt.Printf("%-8.3f %-14.4e %-14.4e\n", pt.P, pt.Small.FailRate(), pt.Large.FailRate())
	}
	fmt.Printf("streaming sustained threshold ≈ %.3f\n", cross)

	fmt.Println("\n'a fault-tolerant memory must decode its syndrome stream in real")
	fmt.Println(" time, with bounded lag and bounded memory — the window does both'")
}
