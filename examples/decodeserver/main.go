// Decode serving: many logical qubits, one decoder fleet. A
// fault-tolerant machine runs every logical qubit's syndrome stream
// through classical decoding continuously, so the deployment shape is a
// long-lived server: sessions open and close while a shared worker pool
// decodes all of them, ingest queues bound the memory between producer
// and decoder, and committed Pauli frames flow back out. Here four
// tenants (two phenomenological, two circuit-level) stream over the
// wire protocol through in-memory pipes, a fifth session runs with an
// adaptive window that tracks its defect density, and the server's
// snapshot reports per-session commit latency on the way out.
package main

import (
	"fmt"
	"net"
	"sync"

	"ftqc/internal/bits"
	"ftqc/internal/frame"
	"ftqc/internal/noise"
	"ftqc/internal/server"
	"ftqc/internal/spacetime"
)

func main() {
	fmt.Println("== multi-tenant streaming decode server ==")
	srv := server.New(server.Config{QueueDepth: 8})

	// Four tenants over the wire protocol: syndrome layers in, frames out.
	const rounds = 48
	type tenant struct {
		name string
		cfg  server.SessionConfig
		feed spacetime.LayerFeed
	}
	tenants := []tenant{
		{"phenom L=4 p=2%", server.Phenomenological(4, 64, 0.02, 0.02),
			spacetime.NewLayerSource(4, 0.02, 0.02, 64, frame.NewAggregateSampler(11, 5))},
		{"phenom L=6 p=1%", server.Phenomenological(6, 64, 0.01, 0.01),
			spacetime.NewLayerSource(6, 0.01, 0.01, 64, frame.NewAggregateSampler(12, 5))},
		{"circuit L=4 eps=0.3%", server.CircuitLevel(4, 64, noise.Uniform(0.003)),
			spacetime.NewCircuitLayerSource(4, noise.Uniform(0.003), 64, frame.NewAggregateSampler(13, 5))},
		{"circuit L=6 eps=0.2%", server.CircuitLevel(6, 64, noise.Uniform(0.002)),
			spacetime.NewCircuitLayerSource(6, noise.Uniform(0.002), 64, frame.NewAggregateSampler(14, 5))},
	}
	fmt.Printf("\n%d tenants stream %d rounds of difference syndromes each:\n", len(tenants), rounds)
	var wg sync.WaitGroup
	var once sync.Once
	midFlight := make(chan []server.SessionStats, 1)
	for _, tn := range tenants {
		wg.Add(1)
		go func(tn tenant) {
			defer wg.Done()
			client, serverSide := net.Pipe()
			go srv.ServeConn(serverSide)
			conn := server.Dial(client)
			if err := conn.Open(tn.cfg); err != nil {
				panic(err)
			}
			nc := tn.cfg.L * tn.cfg.L
			layerX := bits.NewVecs(nc, tn.cfg.Lanes)
			layerZ := bits.NewVecs(nc, tn.cfg.Lanes)
			for r := 0; r < rounds; r++ {
				tn.feed.NextLayers(layerX, layerZ)
				if err := conn.Round(layerX, layerZ); err != nil {
					panic(err)
				}
				if r == rounds/2 {
					once.Do(func() { midFlight <- srv.Snapshot() })
				}
			}
			tn.feed.CloseLayers(layerX, layerZ)
			res, err := conn.Finish(layerX, layerZ)
			if err != nil {
				panic(err)
			}
			weight := 0
			for lane := range res.FramesX {
				weight += res.FramesX[lane].Weight() + res.FramesZ[lane].Weight()
			}
			fmt.Printf("  %-22s %d/%d rounds committed, frame weight %d across %d lanes\n",
				tn.name, res.Committed, res.Rounds, weight, len(res.FramesX))
		}(tn)
	}
	wg.Wait()

	// A fifth tenant with an adaptive window: heavy noise widens it.
	cfg := server.Phenomenological(4, 64, 0.06, 0.06)
	cfg.Window, cfg.Commit = 4, 2
	cfg.Adapt = &server.AdaptConfig{MinWindow: 4, MaxWindow: 12, GrowAt: 0.02, ShrinkAt: 0.001, Cooldown: 1}
	s, err := srv.Open(cfg)
	if err != nil {
		panic(err)
	}
	src := spacetime.NewLayerSource(4, 0.06, 0.06, 64, frame.NewAggregateSampler(15, 5))
	layerX := bits.NewVecs(16, 64)
	layerZ := bits.NewVecs(16, 64)
	for r := 0; r < 64; r++ {
		src.NextLayers(layerX, layerZ)
		if err := s.Submit(layerX, layerZ); err != nil {
			panic(err)
		}
	}
	src.CloseLayers(layerX, layerZ)
	if err := s.CloseWith(layerX, layerZ); err != nil {
		panic(err)
	}
	if _, err := s.Wait(); err != nil {
		panic(err)
	}
	ad := s.Stats()
	fmt.Printf("\nadaptive tenant (p=q=6%%, started W=4): window now %d after %d moves, density %.3f\n",
		ad.Window, ad.WindowMoves, ad.DefectDensity)

	fmt.Println("\nmid-flight server snapshot (taken while the wire tenants streamed):")
	fmt.Printf("  %-4s %-8s %-7s %-9s %-9s %-9s %-10s %-10s\n",
		"id", "model", "window", "rounds", "committed", "density", "p50 lat", "p99 lat")
	for _, st := range <-midFlight {
		model := "phenom"
		if st.Circuit {
			model = "circuit"
		}
		fmt.Printf("  %-4d %-8s %-7d %-9d %-9d %-9.4f %-10v %-10v\n",
			st.ID, model, st.Window, st.Rounds, st.Committed, st.DefectDensity,
			st.Latency.P50, st.Latency.P99)
	}

	srv.Shutdown()
	fmt.Println("\nserver drained: every session's committed frames were delivered")
	fmt.Println("\n'the classical decode must keep pace with the quantum clock for")
	fmt.Println(" every logical qubit at once — a decoder is a service, not a call'")
}
