// Package ftqc is a Go reproduction of John Preskill's "Fault-Tolerant
// Quantum Computation" (quant-ph/9712048; "Fault-Tolerant Quantum
// Computers"): stabilizer codes and a hand-rolled CHP tableau simulator,
// the complete set of fault-tolerant recovery and logic gadgets for
// Steane's 7-qubit code (Shor-method and Steane-method ancillas with
// verification, syndrome repetition, transversal gates, the
// measurement-based Toffoli), circuit-level threshold Monte Carlo with
// concatenation flow equations and resource estimates, and the
// topological layer (Kitaev's toric code and nonabelian A₅ fluxon
// logic).
//
// # The batched Monte Carlo engine
//
// All of the package's Monte Carlo (memory experiments, EC failure
// rates, exRec threshold sweeps, toric passive memory) runs on a batched
// bit-parallel Pauli-frame engine (BatchFrameSim): W independent shots
// advance together as bit-planes, one machine word per 64 shots, so
// Clifford frame propagation is word-wide XOR/AND and fault injection is
// the sampling of random lane masks (see internal/frame's package
// documentation for the layout). The RNG-stream discipline is two-level:
//
//   - Production runs draw whole fault masks from one deterministic PCG
//     stream per batch chunk, keyed by (seed, chunk index) — results
//     depend only on the experiment's seed and sample count, never on
//     GOMAXPROCS or scheduling.
//
//   - Verification runs pair every batch lane i with the dedicated
//     stream rand.New(rand.NewPCG(seed, i)) consumed draw-for-draw like
//     the scalar simulator, making batch and scalar runs bit-identical
//     shot for shot; the equivalence test suites hold the two engines to
//     exactly that standard.
//
// Experiment entry points therefore take a seed uint64 rather than a
// *rand.Rand: batched workers derive their independent streams from it.
//
// The toric experiments decode through internal/decoder's scalable
// subsystem: a near-linear weighted-growth union-find decoder (the
// production choice, tractable out to L = 32 and beyond) and a
// polynomial blossom minimum-weight perfect matcher — dense or pruned
// to the locally short edges with priced optimality repair — as the
// accuracy baseline, run as a worker-pool stage over word-aligned lane
// spans with results identical for any GOMAXPROCS.
//
// Noisy syndrome extraction (the regime real hardware decodes in) is
// the internal/spacetime subsystem: T measurement rounds whose
// difference syndromes span a weighted 3D space-time decoding volume,
// with time-like edges for measurement errors, erasure channels
// (leaked data qubits, lost measurement rounds) feeding the peeling
// pass, both X and Z logical sectors tracked per shot through the
// dual-lattice indexing, and the sustained p = q threshold exposed via
// SustainedThreshold.
//
// Circuit-level syndrome extraction (the regime the paper's realistic
// threshold estimates assume) is the internal/extract subsystem: the
// actual extraction circuit — ancilla per check, PrepZ/PrepX, four
// CNOTs in a fixed schedule, MeasZ/MeasX — runs on the batch frame
// engine with faults at every location. Mid-round CNOT faults produce
// correlated diagonal space-time defect pairs and ancilla hooks
// propagate multi-qubit errors, so the decoding volumes gain a third
// (diagonal) edge class with circuit-derived LLR weights, priced
// exactly by the blossom matcher through a precomputed circuit metric
// (CircuitMemory, CircuitSustainedThreshold — the measured crossing
// sits well below the phenomenological one).
//
// Sustained operation — decoding forever in constant memory — is the
// internal/stream subsystem: difference layers decode through a
// sliding window of W rounds with a commit region (StreamingMemory,
// StreamingMemoryWith), corrections finalize into a running Pauli
// frame behind the window, and the decode stage runs as a long-lived
// worker-pool service (batched shots in, corrections out, identical
// for any GOMAXPROCS). A window of 2L rounds reproduces whole-volume
// failure rates; a window covering the whole stream reproduces the
// whole-volume decode bit for bit.
//
// The facade below re-exports the main entry points; the implementation
// lives in the internal/ packages, one per subsystem (see DESIGN.md for
// the full inventory and EXPERIMENTS.md for the paper-vs-measured
// record).
package ftqc

import (
	"fmt"
	"math/rand/v2"

	"ftqc/internal/anyon"
	"ftqc/internal/code"
	"ftqc/internal/concat"
	"ftqc/internal/frame"
	"ftqc/internal/ft"
	"ftqc/internal/group"
	"ftqc/internal/noise"
	"ftqc/internal/resource"
	"ftqc/internal/server"
	"ftqc/internal/spacetime"
	"ftqc/internal/statevec"
	"ftqc/internal/stream"
	"ftqc/internal/surface"
	"ftqc/internal/tableau"
	"ftqc/internal/threshold"
	"ftqc/internal/toric"
)

// Core stabilizer machinery.
type (
	// Tableau is the Aaronson–Gottesman stabilizer simulator.
	Tableau = tableau.Tableau
	// StateVector is the dense simulator for non-Clifford verification.
	StateVector = statevec.State
	// StabilizerCode is an [[n,k]] stabilizer code.
	StabilizerCode = code.Code
	// CSSCode is a CSS code with sector-wise decoding.
	CSSCode = code.CSS
	// NoiseParams is the §6 stochastic error model.
	NoiseParams = noise.Params
	// FrameSim is the scalar Pauli-frame Monte Carlo simulator.
	FrameSim = frame.Sim
	// BatchFrameSim is the bit-parallel Pauli-frame simulator: W shots
	// advance together as bit-planes, one word per 64 shots.
	BatchFrameSim = frame.BatchSim
	// FrameSampler supplies a batch simulator's randomness as lane masks.
	FrameSampler = frame.Sampler
)

// NewTableau returns the all-|0⟩ stabilizer state on n qubits.
func NewTableau(n int, rng *rand.Rand) *Tableau { return tableau.New(n, rng) }

// NewStateVector returns |0…0⟩ on n qubits (n ≤ ~20).
func NewStateVector(n int) *StateVector { return statevec.NewZero(n) }

// NewFrameSim returns a Pauli-frame simulator under the given noise.
func NewFrameSim(n int, p NoiseParams, rng *rand.Rand) *FrameSim {
	return frame.New(n, p, rng)
}

// NewBatchFrameSim returns a batched Pauli-frame simulator of n qubits by
// w lanes drawing aggregate fault masks from the (seed, stream) PCG.
func NewBatchFrameSim(n, w int, p NoiseParams, seed, stream uint64) *BatchFrameSim {
	return frame.NewBatch(n, w, p, frame.NewAggregateSampler(seed, stream))
}

// NewLockstepBatchFrameSim returns a batched simulator whose lane i is
// bit-identical to a scalar FrameSim driven by
// rand.New(rand.NewPCG(seed, uint64(i))) — the verification
// configuration of the batch engine.
func NewLockstepBatchFrameSim(n, w int, p NoiseParams, seed uint64) *BatchFrameSim {
	return frame.NewBatch(n, w, p, frame.NewLockstepSampler(seed, w))
}

// Steane returns Steane's [[7,1,3]] code (Preskill §2, Eq. 18).
func Steane() *CSSCode { return code.Steane() }

// FiveQubit returns the [[5,1,3]] code (§4.2).
func FiveQubit() *StabilizerCode { return code.FiveQubit() }

// ShorFamily returns the [[(2t+1)², 1, 2t+1]] code family of §5.
func ShorFamily(t int) *CSSCode { return code.ShorFamily(t) }

// UniformNoise gives every fault location probability eps.
func UniformNoise(eps float64) NoiseParams { return noise.Uniform(eps) }

// Fault-tolerance gadgets and experiments (§2–§6).
type (
	// ECConfig selects the §3 verification and repetition policies.
	ECConfig = ft.Config
	// ECMethod picks Steane-method, Shor-method or naive recovery.
	ECMethod = ft.ECMethod
	// ThresholdEstimate is a fitted pseudothreshold analysis.
	ThresholdEstimate = threshold.Estimate
	// Flow is the concatenation flow equation of Eq. (33).
	Flow = concat.Flow
	// Machine is a §6 resource estimate.
	Machine = resource.Machine
)

// Recovery methods.
const (
	MethodSteane = ft.MethodSteane
	MethodShor   = ft.MethodShor
	MethodNaive  = ft.MethodNaive
)

// DefaultECConfig returns the paper's default policies (§3.3–§3.4).
func DefaultECConfig() ECConfig { return ft.DefaultConfig() }

// MemoryExperiment measures the logical failure rate of an encoded qubit
// held for the given number of recovery rounds (Eq. 14's scenario).
func MemoryExperiment(method ECMethod, storage, gadget NoiseParams, cfg ECConfig, rounds, samples int, seed uint64) ft.MemoryResult {
	return ft.MemoryExperiment(method, storage, gadget, cfg, rounds, samples, seed)
}

// EstimateThreshold sweeps the physical error rate, fits p = A·ε², and
// returns the pseudothreshold 1/A (the Eqs. 34–35 analysis).
func EstimateThreshold(method ECMethod, model threshold.Model, eps []float64, cfg ECConfig, samples int, seed uint64) ThresholdEstimate {
	return threshold.Run(method, model, eps, cfg, samples, seed)
}

// PaperFlow returns the Eq. (33) flow with the counting coefficient A=21.
func PaperFlow() Flow { return concat.PaperFlow() }

// FactoringMachines reproduces the §6 resource table for factoring an
// n-bit number: the concatenated-Steane machine at eps=1e-6 and the
// block-55 alternative at 1e-5.
func FactoringMachines(bits int, flowA float64) (concatenated Machine, block55 Machine, err error) {
	w := resource.Factoring(bits)
	concatenated, err = resource.SizeConcatenated(w, 1e-6, concat.Flow{A: flowA}, 3.0)
	block55 = resource.SizeSteane55(w, 1e-5)
	return concatenated, block55, err
}

// Topological layer (§7).
type (
	// ToricLattice is Kitaev's code on an L×L torus.
	ToricLattice = toric.Lattice
	// ToricDecoder selects the toric decoding strategy.
	ToricDecoder = toric.DecoderKind
	// A5Encoding is the nonabelian fluxon encoding of §7.4.
	A5Encoding = anyon.A5Encoding
	// FluxRegister is a register of nonabelian flux pairs.
	FluxRegister = anyon.Register
	// PermGroup is a finite permutation group.
	PermGroup = group.Group
)

// Toric decoders (see internal/decoder for the algorithms).
const (
	// ToricDecoderGreedy repeatedly pairs the two closest defects.
	ToricDecoderGreedy = toric.DecoderGreedy
	// ToricDecoderExact is the polynomial (blossom) exact minimum-weight
	// matcher — the accuracy baseline, with no defect-count cap.
	ToricDecoderExact = toric.DecoderExact
	// ToricDecoderUnionFind is the near-linear union-find decoder — the
	// production decoder that makes L = 16–32 experiments tractable.
	ToricDecoderUnionFind = toric.DecoderUnionFind
)

// NewToricLattice returns an L×L toric code lattice.
func NewToricLattice(l int) ToricLattice { return toric.NewLattice(l) }

// ToricMemory runs the passive-memory Monte Carlo at flip probability p
// with the union-find production decoder. The seed fully determines the
// result: batched workers derive their independent PCG streams from it.
func ToricMemory(l int, p float64, samples int, seed uint64) toric.MemoryResult {
	return toric.MemoryExperiment(l, p, toric.DecoderUnionFind, samples, seed)
}

// ToricMemoryWith is ToricMemory under an explicit decoder choice.
func ToricMemoryWith(l int, p float64, dec ToricDecoder, samples int, seed uint64) toric.MemoryResult {
	return toric.MemoryExperiment(l, p, dec, samples, seed)
}

// NewAnyonComputer returns the A₅ flux-pair encoding and a register of k
// pairs initialized to logical 0.
func NewAnyonComputer(k int) (A5Encoding, *FluxRegister) {
	enc := anyon.NewA5Encoding()
	return enc, anyon.NewRegister(enc.G, k, enc.U0)
}

// Code-agnostic surface codes (internal/surface): planar and rotated
// open-boundary codes beside the torus, all behind one detector-graph
// contract that every decoding pipeline (2D, space-time volume,
// streaming window, decode server) accepts.
type (
	// SurfaceCode is the code-agnostic detector-graph contract: sector
	// graphs, logical supports, syndrome hooks, extraction schedule.
	SurfaceCode = surface.Code
	// SurfaceMemoryResult is one 2D surface-code memory measurement.
	SurfaceMemoryResult = surface.MemoryResult
)

// PlanarCode returns the distance-d planar surface code (rough top and
// bottom, smooth left and right; d² + (d−1)² data qubits).
func PlanarCode(d int) SurfaceCode { return surface.Planar(d) }

// RotatedCode returns the distance-d rotated surface code (d² data
// qubits — the minimal-overhead surface code; d odd).
func RotatedCode(d int) SurfaceCode { return surface.Rotated(d) }

// ToricCode returns the L×L toric code under the same contract.
func ToricCode(l int) SurfaceCode { return toric.Cached(l) }

// SurfaceMemory runs the 2D passive-memory Monte Carlo for any surface
// code at flip probability p (per qubit, independently in both
// sectors) with the union-find production decoder.
func SurfaceMemory(c SurfaceCode, p float64, samples int, seed uint64) SurfaceMemoryResult {
	return surface.MemoryExperimentXZ(c, p, samples, seed)
}

// SurfaceSpacetimeMemory is SpacetimeMemory for any surface code:
// `rounds` noisy phenomenological extraction rounds decoded over the
// code's space-time volume (open-boundary detectors ground on the
// virtual node).
func SurfaceSpacetimeMemory(c SurfaceCode, rounds int, p, q float64, samples int, seed uint64) SpacetimeResult {
	return spacetime.CodeMemory(c, rounds, p, q, samples, seed)
}

// SurfaceCircuitMemory is CircuitMemory for any surface code: the
// code's own extraction circuit (per-code CNOT orderings,
// boundary-truncated diagonal edges) at uniform per-location rate eps.
func SurfaceCircuitMemory(c SurfaceCode, rounds int, eps float64, samples int, seed uint64) SpacetimeResult {
	return spacetime.CodeCircuitMemory(c, rounds, noise.Uniform(eps), samples, seed)
}

// StreamingSurfaceMemory is StreamingMemory for any surface code (the
// default W = 2d sliding window; pass window = commit = 0 semantics).
func StreamingSurfaceMemory(c SurfaceCode, rounds int, p, q float64, samples int, seed uint64) (StreamingResult, error) {
	return stream.CodeMemory(c, rounds, p, q, 0, 0, samples, seed)
}

// StreamingSurfaceCircuitMemory is StreamingCircuitMemory for any
// surface code.
func StreamingSurfaceCircuitMemory(c SurfaceCode, rounds int, eps float64, samples int, seed uint64) (StreamingResult, error) {
	return stream.CodeCircuitMemory(c, rounds, noise.Uniform(eps), 0, 0, samples, seed)
}

// Space-time decoding (noisy syndrome extraction).
type (
	// SpacetimeVolume is the weighted 3D decoding volume of a toric code
	// under repeated noisy syndrome extraction.
	SpacetimeVolume = spacetime.Volume
	// SpacetimeResult is one noisy-extraction memory measurement, with
	// per-sector (bit-flip and phase-flip) failure counts.
	SpacetimeResult = spacetime.Result
	// ThresholdPoint is one p = q grid point of a sustained-threshold
	// sweep.
	ThresholdPoint = spacetime.ThresholdPoint
)

// SpacetimeMemory runs the repeated-round noisy-syndrome toric memory:
// `rounds` rounds of syndrome extraction whose measurements flip with
// probability q, data errors at rate p per round, decoded over the
// weighted 3D space-time graph with the union-find production decoder.
// Both logical sectors are tracked per shot; q = 0, rounds = 1 reduces
// to the 2D ToricMemory statistics.
func SpacetimeMemory(l, rounds int, p, q float64, samples int, seed uint64) SpacetimeResult {
	return spacetime.Memory(l, rounds, p, q, toric.DecoderUnionFind, samples, seed)
}

// SpacetimeMemoryWith is SpacetimeMemory under an explicit decoder
// choice (DecoderExact runs the weighted blossom matcher).
func SpacetimeMemoryWith(l, rounds int, p, q float64, dec ToricDecoder, samples int, seed uint64) SpacetimeResult {
	return spacetime.Memory(l, rounds, p, q, dec, samples, seed)
}

// SustainedThreshold sweeps p = q with rounds = L for two code
// distances and returns the crossing of their failure curves — the
// sustained threshold of the noisy-extraction memory — along with the
// measured points (NaN if the grid shows no crossing).
func SustainedThreshold(l1, l2 int, grid []float64, samples int, seed uint64) (float64, []ThresholdPoint) {
	return spacetime.SustainedThreshold(l1, l2, grid, toric.DecoderUnionFind, samples, seed)
}

// ErasedSpacetimeMemory is SpacetimeMemory with erasure channels
// threaded into the 3D decode: data qubits leak (depolarize at a known
// location) with probability pe per round, measurements are lost
// (replaced by a coin, their time-like edge erased) with probability qe
// per round, and the union-find peeling pass exploits the locations.
func ErasedSpacetimeMemory(l, rounds int, p, q, pe, qe float64, samples int, seed uint64) SpacetimeResult {
	return spacetime.ErasedMemory(l, rounds, p, q, pe, qe, samples, seed)
}

// Circuit-level syndrome extraction (internal/extract + the diagonal-
// edge decoding volumes of internal/spacetime).
type (
	// CircuitLayerSource runs the explicit extraction circuit — one
	// ancilla per plaquette and per star, PrepZ/PrepX, four CNOTs in a
	// fixed schedule, MeasZ/MeasX — on the batch frame engine with
	// faults at every location, emitting difference-syndrome layers
	// behind the same contract as the phenomenological source.
	CircuitLayerSource = spacetime.CircuitLayerSource
)

// CircuitMemory runs the circuit-level noisy-extraction toric memory at
// a uniform per-location error rate ε (every preparation, CNOT,
// measurement and idle step faults with probability ε), decoded over
// the diagonal-edge space-time volume with the union-find production
// decoder. CNOT faults between a data qubit's two reads produce
// correlated diagonal defect pairs; ancilla hooks propagate multi-qubit
// errors — the full circuit model behind realistic (sub-percent)
// thresholds.
func CircuitMemory(l, rounds int, eps float64, samples int, seed uint64) SpacetimeResult {
	return spacetime.CircuitMemory(l, rounds, noise.Uniform(eps), toric.DecoderUnionFind, samples, seed)
}

// CircuitMemoryWith is CircuitMemory under an explicit per-location
// noise model and decoder choice (DecoderExact prices pairs with the
// circuit-metric blossom matcher). A model the plain pipeline cannot
// honor — leakage (p.Leak) or noise bias (p.Bias), which need the
// erasure-harvesting source and its union-find-only decode — is a
// constructor error pointing at CircuitMemoryOpts, never a silent
// zeroing of the channel.
func CircuitMemoryWith(l, rounds int, p NoiseParams, dec ToricDecoder, samples int, seed uint64) (SpacetimeResult, error) {
	if err := p.Validate(); err != nil {
		return SpacetimeResult{}, err
	}
	if p.Leak > 0 || p.Bias > 0 {
		return SpacetimeResult{}, fmt.Errorf("ftqc: the plain circuit pipeline does not model Leak=%v/Bias=%v — use CircuitMemoryOpts, which harvests leakage as erasures (union-find decode)", p.Leak, p.Bias)
	}
	return spacetime.CircuitMemory(l, rounds, p, dec, samples, seed), nil
}

// Correlated & erasure-aware circuit-level decoding.
type (
	// CircuitDecodeOptions selects the side-information passes of a
	// circuit-level decode: ErasureAware feeds harvested leakage
	// locations into the peeling pass, Correlated reprices the dual
	// sector from the committed primal correction. The zero value is
	// the independent-sector, erasure-blind baseline.
	CircuitDecodeOptions = spacetime.DecodeOptions
)

// CircuitMemoryOpts is the full circuit-level memory Monte Carlo: the
// extraction circuit under P including its leakage (P.Leak, harvested
// as located erasures each round) and noise-bias (P.Bias) channels,
// decoded with the selected side-information passes. Malformed models
// are constructor errors; a leakage-configured run is never silently
// decoded as if leak-free.
func CircuitMemoryOpts(l, rounds int, P NoiseParams, samples int, seed uint64, opts CircuitDecodeOptions) (SpacetimeResult, error) {
	return spacetime.CircuitMemoryOpts(l, rounds, P, samples, seed, opts)
}

// SurfaceCircuitMemoryOpts is CircuitMemoryOpts for any surface code —
// including schedule overrides such as HookParallelToricCode, which is
// how the CNOT-schedule ablation runs both schedules through one
// pipeline.
func SurfaceCircuitMemoryOpts(c SurfaceCode, rounds int, P NoiseParams, samples int, seed uint64, opts CircuitDecodeOptions) (SpacetimeResult, error) {
	return spacetime.CodeCircuitMemoryOpts(c, rounds, P, samples, seed, opts)
}

// StreamingCircuitMemoryOpts runs the same model and decode options
// through the sliding-window streaming decoder (window = commit = 0
// picks the W = 2L default): erasure planes ride the difference layers
// round by round, and correlated runs reprice the dual window each
// slide. With W ≥ rounds it reproduces CircuitMemoryOpts bit for bit.
func StreamingCircuitMemoryOpts(l, rounds int, P NoiseParams, window, commit, samples int, seed uint64, opts CircuitDecodeOptions) (StreamingResult, error) {
	return stream.CircuitMemoryOpts(l, rounds, P, window, commit, samples, seed, opts)
}

// StreamingSurfaceCircuitMemoryOpts is StreamingCircuitMemoryOpts for
// any surface code.
func StreamingSurfaceCircuitMemoryOpts(c SurfaceCode, rounds int, P NoiseParams, window, commit, samples int, seed uint64, opts CircuitDecodeOptions) (StreamingResult, error) {
	return stream.CodeCircuitMemoryOpts(c, rounds, P, window, commit, samples, seed, opts)
}

// CircuitSustainedThresholdOpts sweeps a circuit-level noise family
// model(ε) with rounds = L for two code distances under the selected
// decode options and returns the crossing of their failure curves —
// how the threshold moves when leakage is harvested or the sectors
// decode jointly.
func CircuitSustainedThresholdOpts(l1, l2 int, grid []float64, model func(eps float64) NoiseParams, samples int, seed uint64, opts CircuitDecodeOptions) (float64, []ThresholdPoint, error) {
	return spacetime.CircuitSustainedThresholdOpts(l1, l2, grid, model, samples, seed, opts)
}

// HookParallelToricCode is the L×L toric code under the
// hook-suppressing "parallel-last" CNOT schedule — the other arm of
// the schedule ablation (the default schedule's bent hook pairs leave
// diagonal defect steps and measurably more failures).
func HookParallelToricCode(l int) SurfaceCode { return toric.HookParallel(l) }

// CircuitSustainedThreshold sweeps the uniform per-location rate ε with
// rounds = L for two code distances and returns the crossing of their
// failure curves — the circuit-level sustained threshold, well below
// the phenomenological p = q value.
func CircuitSustainedThreshold(l1, l2 int, grid []float64, samples int, seed uint64) (float64, []ThresholdPoint) {
	return spacetime.CircuitSustainedThreshold(l1, l2, grid, toric.DecoderUnionFind, samples, seed)
}

// StreamingCircuitMemory runs the circuit-level memory through the
// sliding-window streaming decoder with the default W = 2L window: the
// extraction circuit streams round by round and the diagonal-edge
// windows decode and commit as they go. It errors on invalid lattice,
// round, or window parameters instead of panicking mid-decode.
func StreamingCircuitMemory(l, rounds int, eps float64, samples int, seed uint64) (StreamingResult, error) {
	return stream.CircuitMemory(l, rounds, noise.Uniform(eps), 0, 0, samples, seed)
}

// Streaming windowed decoding (sustained operation).
type (
	// StreamingResult is one streaming-memory measurement.
	StreamingResult = stream.Result
	// StreamSession owns a window configuration and its long-lived
	// decode services (decoder worker pools).
	StreamSession = stream.Session
	// StreamDecoder consumes difference layers round by round through a
	// sliding window with a commit region — constant memory per lane.
	StreamDecoder = stream.Decoder
)

// StreamingMemory runs the noisy-syndrome toric memory through the
// sliding-window streaming decoder with the default window (W = 2L,
// commit L): syndrome layers decode as they arrive, corrections commit
// behind the window, and per-lane memory stays O(L²·W) no matter how
// many rounds stream past. With W ≥ rounds it reproduces the
// whole-volume SpacetimeMemory decode bit for bit.
func StreamingMemory(l, rounds int, p, q float64, samples int, seed uint64) (StreamingResult, error) {
	w, c := stream.DefaultWindow(l)
	return stream.Memory(l, rounds, p, q, w, c, samples, seed)
}

// StreamingMemoryWith is StreamingMemory with explicit window-size
// knobs: `window` buffered rounds per decode, `commit` rounds finalized
// per slide (0 picks the defaults). Invalid window shapes (commit not
// in [1, window-1], window < 2, ...) are reported as errors.
func StreamingMemoryWith(l, rounds int, p, q float64, window, commit int, samples int, seed uint64) (StreamingResult, error) {
	return stream.Memory(l, rounds, p, q, window, commit, samples, seed)
}

// NewStreamSession builds a streaming decode session (window graphs
// plus worker-pool decode services) for rate-(p, q) noise. Close it
// when done. Edge weights are derived with the window as the decode
// horizon — the natural choice for an endless stream, but in extreme
// regimes where the spacetime.Weights caps bind (q near 0 or ½) it can
// differ from the rounds-derived weights StreamingMemory uses; for
// exact parity with a Memory result, build stream.NewSession with
// explicit spacetime.Weights(p, q, l, rounds).
func NewStreamSession(l, window, commit int, p, q float64) (*StreamSession, error) {
	wh, wv := spacetime.Weights(p, q, l, window)
	return stream.NewSession(l, window, commit, wh, wv)
}

// StreamingSustainedThreshold sweeps p = q with T = 4L rounds through
// W = 2L sliding windows for two code distances — the sustained
// threshold measured in genuine streaming operation.
func StreamingSustainedThreshold(l1, l2 int, grid []float64, samples int, seed uint64) (float64, []stream.ThresholdPoint) {
	return stream.SustainedThreshold(l1, l2, grid, samples, seed)
}

// Multi-tenant decode serving (internal/server).
type (
	// DecodeServer multiplexes many concurrent logical-qubit streaming
	// sessions over one shared decode worker pool, with per-session
	// bounded ingest queues, graceful drain, commit-latency histograms,
	// and optional adaptive windows.
	DecodeServer = server.Server
	// DecodeServerConfig sizes the server: worker count, per-session
	// queue depth, and the overflow policy.
	DecodeServerConfig = server.Config
	// DecodeSession is one live logical-qubit stream on a DecodeServer.
	DecodeSession = server.Session
	// DecodeSessionConfig describes a session's lattice, lane count, and
	// window shape; build one with server.Phenomenological or
	// server.CircuitLevel, or fill it by hand.
	DecodeSessionConfig = server.SessionConfig
	// DecodeSessionStats is a point-in-time observability snapshot of
	// one session.
	DecodeSessionStats = server.SessionStats
)

// NewDecodeServer starts a multi-tenant streaming decode server: a
// shared decoder worker fleet plus interned window graphs, ready to
// Open any number of concurrent sessions. Shut it down when done.
func NewDecodeServer(cfg DecodeServerConfig) *DecodeServer { return server.New(cfg) }

// PhenomenologicalSession describes a rate-(p, q) phenomenological
// streaming session with the default W = 2L window.
func PhenomenologicalSession(l, lanes int, p, q float64) DecodeSessionConfig {
	return server.Phenomenological(l, lanes, p, q)
}

// CircuitSession describes a circuit-level streaming session (diagonal
// detector edges) under uniform per-location rate eps.
func CircuitSession(l, lanes int, eps float64) DecodeSessionConfig {
	return server.CircuitLevel(l, lanes, noise.Uniform(eps))
}

// SurfaceSession describes a phenomenological streaming session for
// any surface code (PlanarCode/RotatedCode/ToricCode).
func SurfaceSession(c SurfaceCode, lanes int, p, q float64) DecodeSessionConfig {
	return server.PhenomenologicalCode(c, lanes, p, q)
}

// SurfaceCircuitSession describes a circuit-level streaming session
// for any surface code under uniform per-location rate eps.
func SurfaceCircuitSession(c SurfaceCode, lanes int, eps float64) DecodeSessionConfig {
	return server.CircuitLevelCode(c, lanes, noise.Uniform(eps))
}
