package ftqc

import (
	"math/rand/v2"
	"testing"

	"ftqc/internal/bits"
	"ftqc/internal/noise"
)

func TestFacadeSteane(t *testing.T) {
	c := Steane()
	if c.N != 7 || c.K != 1 {
		t.Fatalf("Steane: [[%d,%d]]", c.N, c.K)
	}
	if FiveQubit().N != 5 {
		t.Fatal("FiveQubit wrong")
	}
	if ShorFamily(2).N != 25 {
		t.Fatal("ShorFamily wrong")
	}
}

func TestFacadeSimulators(t *testing.T) {
	tb := NewTableau(3, rand.New(rand.NewPCG(1, 2)))
	tb.H(0)
	tb.CNOT(0, 1)
	sv := NewStateVector(3)
	sv.H(0)
	sv.CNOT(0, 1)
	if p := sv.Prob1(1); p < 0.49 || p > 0.51 {
		t.Fatalf("facade statevec broken: %v", p)
	}
	fs := NewFrameSim(3, UniformNoise(0), nil)
	fs.InjectX(0)
	fs.CNOT(0, 1)
	if !fs.XError(1) {
		t.Fatal("facade frame sim broken")
	}
}

func TestFacadeBatchFrameSim(t *testing.T) {
	b := NewBatchFrameSim(2, 128, UniformNoise(0), 1, 2)
	b.InjectX(0, 5)
	b.CNOT(0, 1)
	if !b.XError(1, 5) || b.XError(1, 6) {
		t.Fatal("facade batch sim broken")
	}
	lb := NewLockstepBatchFrameSim(3, 64, UniformNoise(0.2), 3)
	lb.H(0)
	lb.CNOT(0, 1)
	mz := lb.MeasZ(1)
	s := NewFrameSim(3, UniformNoise(0.2), rand.New(rand.NewPCG(3, 9)))
	s.H(0)
	s.CNOT(0, 1)
	if got := s.MeasZ(1); got != mz.Get(9) {
		t.Fatalf("lockstep facade: lane 9 %v scalar %v", mz.Get(9), got)
	}
}

func TestFacadeMemoryExperiment(t *testing.T) {
	res := MemoryExperiment(MethodSteane, NoiseParams{Storage: 1e-3}, UniformNoise(1e-3),
		DefaultECConfig(), 2, 2000, 3)
	if res.Samples != 2000 {
		t.Fatalf("samples %d", res.Samples)
	}
	if res.FailRate() > 0.1 {
		t.Fatalf("implausible failure rate %v", res.FailRate())
	}
}

func TestFacadeThreshold(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	est := EstimateThreshold(MethodSteane, noise.Uniform, []float64{1e-3}, DefaultECConfig(), 5000, 5)
	if est.A <= 0 {
		t.Fatalf("estimate %+v", est)
	}
}

func TestFacadeFlowAndResources(t *testing.T) {
	f := PaperFlow()
	if f.Threshold() <= 0.04 || f.Threshold() >= 0.05 {
		t.Fatalf("paper threshold %v", f.Threshold())
	}
	conc, block55, err := FactoringMachines(432, 1e4)
	if err != nil {
		t.Fatal(err)
	}
	if conc.DataQubits <= 0 || block55.TotalQubits < 3e5 {
		t.Fatal("machine sizing broken")
	}
}

func TestFacadeToric(t *testing.T) {
	lat := NewToricLattice(4)
	if lat.Qubits() != 32 {
		t.Fatal("lattice wrong")
	}
	r := ToricMemory(3, 0.02, 500, 7)
	if r.Samples != 500 {
		t.Fatal("memory experiment wrong")
	}
}

func TestFacadeAnyon(t *testing.T) {
	enc, reg := NewAnyonComputer(2)
	enc.NOT(reg, 0)
	f := reg.MeasureFlux(0, rand.New(rand.NewPCG(9, 10)))
	if b, err := enc.Bit(f); err != nil || b != 1 {
		t.Fatalf("anyon NOT broken: %v %v", f, err)
	}
}

func TestFacadeSpacetime(t *testing.T) {
	r := SpacetimeMemory(4, 4, 0.02, 0.02, 1000, 11)
	if r.Samples != 1000 || r.L != 4 || r.T != 4 {
		t.Fatalf("spacetime memory wrong: %+v", r)
	}
	if r.Failures < r.FailX || r.Failures < r.FailZ {
		t.Fatalf("sector accounting broken: %+v", r)
	}
	ex := SpacetimeMemoryWith(3, 2, 0.03, 0.03, ToricDecoderExact, 500, 12)
	if ex.Samples != 500 {
		t.Fatalf("spacetime exact decode wrong: %+v", ex)
	}
	a := SpacetimeMemory(4, 4, 0.02, 0.02, 1000, 11)
	if a != r {
		t.Fatalf("spacetime memory not deterministic: %+v vs %+v", a, r)
	}
}

func TestFacadeCircuit(t *testing.T) {
	r := CircuitMemory(3, 3, 0.004, 400, 5)
	if r.Samples != 400 || r.L != 3 || r.T != 3 {
		t.Fatalf("circuit memory result malformed: %+v", r)
	}
	if r.FailRate() > 0.5 {
		t.Fatalf("L=3 circuit memory at eps=0.004 implausibly noisy: %+v", r)
	}
	sr, err := StreamingCircuitMemory(3, 8, 0.004, 300, 6)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Samples != 300 || sr.Window != 6 || sr.Commit != 3 {
		t.Fatalf("streaming circuit result malformed: %+v", sr)
	}
	if _, pts := CircuitSustainedThreshold(2, 3, []float64{0.004}, 200, 7); len(pts) != 1 {
		t.Fatalf("threshold sweep returned %d points", len(pts))
	}
}

func TestFacadeStreaming(t *testing.T) {
	r, err := StreamingMemory(4, 16, 0.02, 0.02, 1000, 13)
	if err != nil {
		t.Fatal(err)
	}
	if r.Samples != 1000 || r.L != 4 || r.T != 16 || r.Window != 8 || r.Commit != 4 {
		t.Fatalf("streaming memory wrong: %+v", r)
	}
	if r.Failures < r.FailX || r.Failures < r.FailZ {
		t.Fatalf("sector accounting broken: %+v", r)
	}
	if a, _ := StreamingMemory(4, 16, 0.02, 0.02, 1000, 13); a != r {
		t.Fatalf("streaming memory not deterministic: %+v vs %+v", a, r)
	}
	w, err := StreamingMemoryWith(4, 10, 0.02, 0.02, 5, 2, 500, 14)
	if err != nil {
		t.Fatal(err)
	}
	if w.Window != 5 || w.Commit != 2 || w.Samples != 500 {
		t.Fatalf("window knobs ignored: %+v", w)
	}
	if _, err := StreamingMemoryWith(4, 10, 0.02, 0.02, 5, 5, 500, 14); err == nil {
		t.Fatal("commit == window accepted")
	}
	if _, err := NewStreamSession(1, 8, 4, 0.02, 0.02); err == nil {
		t.Fatal("L=1 stream session accepted")
	}
	er := ErasedSpacetimeMemory(4, 3, 0.01, 0.01, 0.08, 0.08, 500, 15)
	if er.Pe != 0.08 || er.Qe != 0.08 || er.Samples != 500 {
		t.Fatalf("erased spacetime memory wrong: %+v", er)
	}
}

func TestFacadeDecodeServer(t *testing.T) {
	srv := NewDecodeServer(DecodeServerConfig{Workers: 2})
	sessions := make([]*DecodeSession, 3)
	for i := range sessions {
		var cfg DecodeSessionConfig
		if i%2 == 0 {
			cfg = PhenomenologicalSession(3, 16, 0.02, 0.02)
		} else {
			cfg = CircuitSession(3, 16, 0.003)
		}
		s, err := srv.Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
		layerX := bits.NewVecs(9, 16)
		layerZ := bits.NewVecs(9, 16)
		for r := 0; r < 8; r++ {
			if err := s.Submit(layerX, layerZ); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.CloseWith(layerX, layerZ); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range sessions {
		res, err := s.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Finished || res.Committed != 8 {
			t.Fatalf("session %d incomplete: %+v", i, res)
		}
		if st := s.Stats(); st.Latency.Count == 0 || st.Rounds != 8 {
			t.Fatalf("session %d stats empty: %+v", i, st)
		}
	}
	srv.Shutdown()
	if _, err := srv.Open(PhenomenologicalSession(3, 8, 0.02, 0.02)); err == nil {
		t.Fatal("Open after Shutdown accepted")
	}
}
