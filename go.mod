module ftqc

go 1.24
