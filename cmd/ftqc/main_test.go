package main

import (
	"bytes"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestMain lets the test binary stand in for the real CLI: when
// re-executed with FTQC_CLI_EXEC=1 it runs main() on its arguments, so
// the exit-code tests below observe the genuine os.Exit behaviour
// without building the command separately.
func TestMain(m *testing.M) {
	if os.Getenv("FTQC_CLI_EXEC") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runCLI re-executes the test binary as the ftqc command and returns
// its exit code plus both output streams.
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "FTQC_CLI_EXEC=1")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	return code, stdout.String(), stderr.String()
}

func TestCLIExitCodes(t *testing.T) {
	t.Run("no arguments", func(t *testing.T) {
		code, _, stderr := runCLI(t)
		if code != 2 {
			t.Fatalf("bare invocation: exit %d, want 2", code)
		}
		if !strings.Contains(stderr, "usage:") {
			t.Fatalf("bare invocation should print usage to stderr, got %q", stderr)
		}
	})
	t.Run("help", func(t *testing.T) {
		code, stdout, _ := runCLI(t, "help")
		if code != 0 {
			t.Fatalf("help: exit %d, want 0", code)
		}
		if !strings.Contains(stdout, "usage:") || !strings.Contains(stdout, "codes") {
			t.Fatalf("help should list the subcommands on stdout, got %q", stdout)
		}
	})
	t.Run("unknown subcommand", func(t *testing.T) {
		code, _, stderr := runCLI(t, "no-such-experiment")
		if code != 2 {
			t.Fatalf("unknown subcommand: exit %d, want 2", code)
		}
		if !strings.Contains(stderr, "no-such-experiment") {
			t.Fatalf("unknown subcommand should be named on stderr, got %q", stderr)
		}
	})
	t.Run("bad flag value", func(t *testing.T) {
		code, _, _ := runCLI(t, "codes", "-samples", "not-a-number")
		if code != 2 {
			t.Fatalf("bad flag value: exit %d, want 2", code)
		}
	})
	t.Run("invalid distances", func(t *testing.T) {
		code, _, stderr := runCLI(t, "codes", "-d1", "4", "-d2", "6")
		if code != 2 {
			t.Fatalf("even distances: exit %d, want 2", code)
		}
		if !strings.Contains(stderr, "odd") {
			t.Fatalf("even distances should explain the odd-distance rule, got %q", stderr)
		}
	})
}
