// Command ftqc regenerates every quantitative result of Preskill's
// "Fault-Tolerant Quantum Computation": one subcommand per experiment of
// the EXPERIMENTS.md index, each printing the rows the paper's equations
// and figures describe. Run `ftqc help` for the list.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ftqc/internal/bits"

	"ftqc/internal/anyon"
	"ftqc/internal/code"
	"ftqc/internal/concat"
	"ftqc/internal/frame"
	"ftqc/internal/ft"
	"ftqc/internal/noise"
	"ftqc/internal/resource"
	"ftqc/internal/server"
	"ftqc/internal/spacetime"
	"ftqc/internal/stream"
	"ftqc/internal/surface"
	"ftqc/internal/threshold"
	"ftqc/internal/toric"
)

type command struct {
	name  string
	about string
	run   func(args []string)
}

var commands []command

func main() {
	commands = []command{
		{"memory", "E01: encoded vs unencoded memory fidelity (Eq. 14)", cmdMemory},
		{"badgood", "E03: naive vs fault-tolerant syndrome circuits (Figs. 2/6)", cmdBadGood},
		{"ancilla", "E04/E05: cat-state and Steane-state verification statistics (Fig. 8, §3.3)", cmdAncilla},
		{"policy", "E06: syndrome repetition policy ablation (§3.4)", cmdPolicy},
		{"exrec", "E07: exRec failure curve and A-coefficient fit (Fig. 9, §5)", cmdExRec},
		{"thresholds", "E08: gate-only and storage-only pseudothresholds (Eqs. 34-35)", cmdThresholds},
		{"concat", "E09/E10: concatenation flow, levels, block scaling (Eqs. 33, 36, 37)", cmdConcat},
		{"shorfamily", "E11: non-concatenated block optimization (Eqs. 30-32)", cmdShorFamily},
		{"resources", "E12: factoring-432 machine sizing (§6)", cmdResources},
		{"systematic", "E13: random vs systematic error accumulation (§6)", cmdSystematic},
		{"leakage", "E14: leakage detection and replacement (Fig. 15)", cmdLeakage},
		{"toric", "E17: toric memory vs distance (§7.1)", cmdToric},
		{"spacetime", "E22: noisy syndrome extraction — 3D space-time decoding, sustained threshold", cmdSpacetime},
		{"stream", "E23: streaming windowed decoding — sustained operation in constant memory", cmdStream},
		{"circuit", "E24: circuit-level extraction — faults at every location, diagonal-edge decoding", cmdCircuit},
		{"codes", "E27: code families — toric vs planar vs rotated vs concatenated Steane", cmdCodes},
		{"serve", "E25: multi-tenant decode server — N concurrent sessions, commit-latency histograms", cmdServe},
		{"sessions", "E25: decode-server observability — live session snapshots under churn", cmdSessions},
		{"thermal", "E18: thermal anyon plasma, e^{-Δ/T} (§7.1)", cmdThermal},
		{"interferometer", "E19: repeated interferometric measurement (Figs. 18/22)", cmdInterferometer},
		{"anyon", "E20: A5 fluxon logic — NOT, Toffoli, pull counts (§7.3-7.4)", cmdAnyon},
	}
	if len(os.Args) < 2 {
		// A bare invocation is a usage error, not a request for help:
		// print the summary where errors go and fail, so scripts notice.
		usage(os.Stderr)
		os.Exit(2)
	}
	if os.Args[1] == "help" || os.Args[1] == "-h" {
		usage(os.Stdout)
		return
	}
	for _, c := range commands {
		if c.name == os.Args[1] {
			c.run(os.Args[2:])
			return
		}
	}
	fmt.Fprintf(os.Stderr, "ftqc: unknown command %q\n\n", os.Args[1])
	usage(os.Stderr)
	os.Exit(2)
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: ftqc <command> [flags]")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Each command reproduces one experiment of the EXPERIMENTS.md index and")
	fmt.Fprintln(w, "prints the corresponding table. Common flags share names everywhere:")
	fmt.Fprintln(w, "  -L        code distance(s); comma-separated lists sweep")
	fmt.Fprintln(w, "  -T        measurement rounds per shot (a number, or L for rounds = distance)")
	fmt.Fprintln(w, "  -p        error-probability grid; for `circuit` it is the uniform")
	fmt.Fprintln(w, "            per-location rate eps (every prep, CNOT, measurement, idle step)")
	fmt.Fprintln(w, "  -decoder  decoding strategy: uf (union-find), exact (blossom MWPM;")
	fmt.Fprintln(w, "            circuit-metric priced on `circuit`), greedy (2D commands only)")
	fmt.Fprintln(w, "  -window   sliding-window height in rounds (stream; circuit -window > 0")
	fmt.Fprintln(w, "            switches the sweep to the streaming pipeline)")
	fmt.Fprintln(w, "  -samples  Monte Carlo samples per grid point")
	fmt.Fprintln(w, "  -seed     base RNG seed of a sweep (stamped in the output header; the")
	fmt.Fprintln(w, "            historical defaults reproduce the tables in EXPERIMENTS.md)")
	fmt.Fprintln(w, "Run `ftqc <command> -h` for the full flag list of a command.")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "commands:")
	for _, c := range commands {
		fmt.Fprintf(w, "  %-15s %s\n", c.name, c.about)
	}
}

// profileFlags registers -cpuprofile/-memprofile on the long-running
// decode subcommands. After fs.Parse, call the returned start function;
// defer the stop function it returns — it finishes the CPU profile and
// writes the heap profile (after a GC, so it shows the resident state,
// not collectable garbage).
func profileFlags(fs *flag.FlagSet) func() func() {
	cpu := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	mem := fs.String("memprofile", "", "write a heap profile to this file when the run ends")
	return func() func() {
		var cpuF *os.File
		if *cpu != "" {
			f, err := os.Create(*cpu)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", fs.Name(), err)
				os.Exit(2)
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", fs.Name(), err)
				os.Exit(2)
			}
			cpuF = f
		}
		return func() {
			if cpuF != nil {
				pprof.StopCPUProfile()
				cpuF.Close()
			}
			if *mem != "" {
				f, err := os.Create(*mem)
				if err != nil {
					fmt.Fprintf(os.Stderr, "%s: %v\n", fs.Name(), err)
					os.Exit(2)
				}
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintf(os.Stderr, "%s: %v\n", fs.Name(), err)
					os.Exit(2)
				}
				f.Close()
			}
		}
	}
}

func cmdMemory(args []string) {
	fs := flag.NewFlagSet("memory", flag.ExitOnError)
	rounds := fs.Int("rounds", 10, "recovery rounds")
	samples := fs.Int("samples", 20000, "Monte Carlo samples per point")
	ideal := fs.Bool("ideal", false, "use flawless recovery circuitry (the Eq. 14 idealization)")
	fs.Parse(args)
	cfg := ft.DefaultConfig()
	fmt.Printf("E01: quantum memory, %d rounds (Steane EC)\n", *rounds)
	fmt.Printf("%-10s %-14s %-14s %-10s\n", "eps", "unencoded", "encoded", "gain")
	for _, eps := range []float64{3e-4, 1e-3, 3e-3, 1e-2} {
		storage := noise.StorageOnly(eps)
		gadget := noise.Uniform(eps)
		if *ideal {
			gadget = noise.Params{}
		}
		enc := ft.MemoryExperiment(ft.MethodSteane, storage, gadget, cfg, *rounds, *samples, 11)
		raw := ft.UnencodedMemory(storage, *rounds, *samples, 12)
		gain := math.NaN()
		if enc.FailRate() > 0 {
			gain = raw.FailRate() / enc.FailRate()
		}
		fmt.Printf("%-10.1e %-14.4e %-14.4e %-10.2f\n", eps, raw.FailRate(), enc.FailRate(), gain)
	}
}

func cmdBadGood(args []string) {
	fs := flag.NewFlagSet("badgood", flag.ExitOnError)
	samples := fs.Int("samples", 50000, "samples per point")
	fs.Parse(args)
	cfg := ft.DefaultConfig()
	fmt.Println("E03: single recovery on a clean block — naive (Fig. 2) vs fault tolerant (Figs. 6-9)")
	fmt.Printf("%-10s %-14s %-14s %-14s\n", "eps", "naive", "shor", "steane")
	for _, eps := range []float64{1e-4, 3e-4, 1e-3, 3e-3} {
		p := noise.Uniform(eps)
		n := ft.ECFailureRate(ft.MethodNaive, p, cfg, *samples, 21)
		sh := ft.ECFailureRate(ft.MethodShor, p, cfg, *samples, 22)
		st := ft.ECFailureRate(ft.MethodSteane, p, cfg, *samples, 23)
		fmt.Printf("%-10.1e %-14.4e %-14.4e %-14.4e\n", eps, n.FailRate(), sh.FailRate(), st.FailRate())
	}
	fmt.Println("naive scales ~O(eps); the verified gadgets scale ~O(eps^2)")
}

func cmdAncilla(args []string) {
	fs := flag.NewFlagSet("ancilla", flag.ExitOnError)
	samples := fs.Int("samples", 30000, "samples")
	fs.Parse(args)
	cfg := ft.DefaultConfig()
	fmt.Println("E04: cat-state verification (Fig. 8) acceptance statistics")
	fmt.Printf("%-10s %-12s %-16s\n", "eps", "attempts", "accept rate")
	for _, eps := range []float64{1e-3, 3e-3, 1e-2, 3e-2} {
		rng := rand.New(rand.NewPCG(31, uint64(eps*1e6)))
		total := 0
		for i := 0; i < *samples; i++ {
			s := frame.New(6, noise.Uniform(eps), rng)
			total += ft.PrepVerifiedCat(s, []int{0, 1, 2, 3}, 4, cfg)
		}
		att := float64(total) / float64(*samples)
		fmt.Printf("%-10.1e %-12.3f %-16.3f\n", eps, att, 1/att)
	}
	fmt.Println("\nE05: Steane-state verification (§3.3) double-|1̄⟩ repair rate")
	fmt.Printf("%-10s %-14s\n", "eps", "flip-repair rate")
	for _, eps := range []float64{1e-3, 3e-3, 1e-2} {
		rng := rand.New(rand.NewPCG(32, uint64(eps*1e6)))
		repairs := 0
		for i := 0; i < *samples; i++ {
			s := frame.New(14, noise.Uniform(eps), rng)
			anc := []int{0, 1, 2, 3, 4, 5, 6}
			chk := []int{7, 8, 9, 10, 11, 12, 13}
			before := s.FaultCount
			ft.PrepVerifiedZero(s, anc, chk, cfg)
			_ = before
			x, _ := s.FrameOn(anc)
			if x.Weight() >= 2 {
				repairs++ // residual double flips escaping verification
			}
		}
		fmt.Printf("%-10.1e %-14.4e\n", eps, float64(repairs)/float64(*samples))
	}
}

func cmdPolicy(args []string) {
	fs := flag.NewFlagSet("policy", flag.ExitOnError)
	samples := fs.Int("samples", 60000, "samples")
	fs.Parse(args)
	fmt.Println("E06: §3.4 syndrome policy ablation (Steane EC, uniform noise)")
	fmt.Printf("%-10s %-14s %-14s %-14s\n", "eps", "once", "repeat-nontriv", "until-agree")
	for _, eps := range []float64{3e-4, 1e-3, 3e-3} {
		p := noise.Uniform(eps)
		row := []float64{}
		for _, pol := range []ft.SyndromePolicy{ft.PolicyOnce, ft.PolicyRepeatNontrivial, ft.PolicyUntilAgree} {
			cfg := ft.DefaultConfig()
			cfg.Policy = pol
			r := ft.ExRecCNOT(ft.MethodSteane, p, cfg, *samples, 41)
			row = append(row, r.FailRate())
		}
		fmt.Printf("%-10.1e %-14.4e %-14.4e %-14.4e\n", eps, row[0], row[1], row[2])
	}
}

func cmdExRec(args []string) {
	fs := flag.NewFlagSet("exrec", flag.ExitOnError)
	samples := fs.Int("samples", 100000, "samples per point")
	fs.Parse(args)
	cfg := ft.DefaultConfig()
	eps := []float64{1e-4, 2e-4, 4e-4, 8e-4, 1.6e-3}
	fmt.Println("E07: transversal-XOR extended rectangle (Fig. 9 recovery), uniform noise")
	for _, m := range []ft.ECMethod{ft.MethodSteane, ft.MethodShor} {
		est := threshold.Run(m, noise.Uniform, eps, cfg, *samples, 51)
		fmt.Print(est)
	}
	fmt.Println("paper block model (Eq. 33): p_L+1 = 21 p_L^2, threshold 1/21 = 4.8e-2 per block-cycle")
}

func cmdThresholds(args []string) {
	fs := flag.NewFlagSet("thresholds", flag.ExitOnError)
	samples := fs.Int("samples", 100000, "samples per point")
	fs.Parse(args)
	cfg := ft.DefaultConfig()
	eps := []float64{1e-4, 2e-4, 4e-4, 8e-4}
	gate := threshold.Run(ft.MethodSteane, noise.GateOnly, eps, cfg, *samples, 61)
	store := threshold.Run(ft.MethodSteane, noise.StorageOnly, []float64{4e-4, 1e-3, 2e-3, 4e-3}, cfg, *samples, 62)
	fmt.Println("E08: circuit-level pseudothresholds (paper Eqs. 34-35: both ~6e-4)")
	fmt.Printf("gate-only:    A=%.3g  threshold=%.3g\n", gate.A, gate.Thresh)
	fmt.Printf("storage-only: A=%.3g  threshold=%.3g\n", store.A, store.Thresh)
	fmt.Print("\ngate-only curve:\n", gate)
	fmt.Print("storage-only curve:\n", store)
}

func cmdConcat(args []string) {
	fs := flag.NewFlagSet("concat", flag.ExitOnError)
	a := fs.Float64("A", 21, "flow coefficient (21 = paper's counting estimate)")
	fs.Parse(args)
	f := concat.Flow{A: *a}
	fmt.Printf("E09: concatenation flow p_(L+1) = %.3g p_L^2, threshold %.3g\n", f.A, f.Threshold())
	fmt.Printf("%-10s", "p0")
	for l := 0; l <= 4; l++ {
		fmt.Printf(" L=%-12d", l)
	}
	fmt.Println()
	for _, p0 := range []float64{f.Threshold() * 0.9, 1e-2, 1e-3, 1e-4} {
		fmt.Printf("%-10.2e", p0)
		for _, p := range f.Levels(p0, 4) {
			fmt.Printf(" %-14.3e", p)
		}
		fmt.Println()
	}
	fmt.Println("\nE10: block size for a T-gate computation (Eq. 37, exponent log2(7)=2.81)")
	fmt.Printf("%-12s %-12s %-14s %-12s\n", "eps", "T", "blocksize", "levels(7^L)")
	for _, tGates := range []float64{1e6, 1e9, 3e9, 1e12} {
		eps := 1e-6
		bs := concat.BlockSizeForComputation(eps, f.Threshold(), tGates)
		lv := f.LevelsNeeded(eps, 1/tGates)
		fmt.Printf("%-12.1e %-12.1e %-14.1f 7^%d=%d\n", eps, tGates, bs, lv, concat.BlockSize(lv))
	}
}

func cmdShorFamily(args []string) {
	fs := flag.NewFlagSet("shorfamily", flag.ExitOnError)
	b := fs.Float64("b", 4, "syndrome complexity exponent (Shor's procedure: b=4)")
	fs.Parse(args)
	fmt.Printf("E11: non-concatenated block optimization, complexity t^%.1f (Eqs. 30-31)\n", *b)
	fmt.Printf("%-10s %-10s %-14s %-14s %-12s\n", "eps", "opt t", "min perr", "asymptotic", "block (2t+1)^2")
	for _, eps := range []float64{1e-4, 1e-5, 1e-6} {
		t := concat.OptimalT(*b, eps)
		p := concat.BlockErrorProbability(t, *b, eps)
		asym := concat.MinBlockError(*b, eps)
		fmt.Printf("%-10.1e %-10d %-14.3e %-14.3e %-12d\n", eps, t, p, asym, concat.ShorFamilyBlockSize(t))
	}
	fmt.Println("\naccuracy needed for T cycles (Eq. 32: eps ~ (log T)^-b):")
	for _, tg := range []float64{1e6, 1e9, 1e12} {
		fmt.Printf("  T=%.0e -> eps ~ %.2e\n", tg, concat.AccuracyForComputation(tg, *b))
	}
}

func cmdResources(args []string) {
	fs := flag.NewFlagSet("resources", flag.ExitOnError)
	bits := fs.Int("bits", 432, "RSA modulus size (432 bits = 130 digits)")
	flowA := fs.Float64("A", 1e4, "calibrated flow coefficient")
	fs.Parse(args)
	w := resource.Factoring(*bits)
	fmt.Printf("E12: factoring a %d-bit number with Shor's algorithm (§6)\n", *bits)
	fmt.Printf("logical qubits: %d (paper: 2160)\n", w.LogicalQubits)
	fmt.Printf("Toffoli gates:  %.2e (paper: ~3e9)\n", w.ToffoliGates)
	fmt.Printf("budgets: gate error %.0e, storage %.0e\n\n", w.TargetGateError, w.TargetStorageError)
	m1, err := resource.SizeConcatenated(w, 1e-6, concat.Flow{A: *flowA}, 3.0)
	if err != nil {
		fmt.Println("concatenated sizing failed:", err)
	} else {
		fmt.Println(m1)
		fmt.Printf("  expected logical failures over the run: %.2g (paper: <1 at L=3, block 343, ~1e6 qubits)\n", m1.ExpectedFailures(w))
	}
	m2 := resource.SizeSteane55(w, 1e-5)
	fmt.Println(m2)
	fmt.Printf("  expected logical failures over the run: %.2g (paper: 4e5 qubits at 1e-5)\n", m2.ExpectedFailures(w))
}

func cmdSystematic(args []string) {
	fs := flag.NewFlagSet("systematic", flag.ExitOnError)
	theta := fs.Float64("theta", 0.001, "per-gate rotation angle")
	samples := fs.Int("samples", 2000, "random-walk samples")
	fs.Parse(args)
	fmt.Printf("E13: drift accumulation, per-step angle θ=%.1e (§6)\n", *theta)
	fmt.Printf("%-8s %-16s %-16s %-10s\n", "steps", "coherent", "random-walk", "ratio")
	rng := rand.New(rand.NewPCG(71, 72))
	for _, n := range []int{100, 200, 400, 800} {
		c := noise.CoherentDriftError(*theta, n)
		r := noise.RandomWalkDriftError(*theta, n, *samples, rng)
		fmt.Printf("%-8d %-16.4e %-16.4e %-10.1f\n", n, c, r, c/r)
	}
	fmt.Println("coherent ∝ N² (amplitude adds), random ∝ N (probability adds)")
	fmt.Printf("threshold penalty: random ε0=6e-4 → systematic ~ %.1e (ε0²)\n",
		noise.SystematicThresholdPenalty(6e-4))
}

func cmdLeakage(args []string) {
	fs := flag.NewFlagSet("leakage", flag.ExitOnError)
	samples := fs.Int("samples", 20000, "samples")
	rounds := fs.Int("rounds", 5, "EC rounds")
	fs.Parse(args)
	cfg := ft.DefaultConfig()
	fmt.Println("E14: leakage detection (Fig. 15): store with leaky gates, ± detection circuit")
	fmt.Printf("%-10s %-10s %-16s %-16s\n", "eps", "leak", "no detection", "detect+replace")
	for _, eps := range []float64{1e-3, 3e-3} {
		for _, leak := range []float64{1e-3, 3e-3} {
			p := noise.Uniform(eps)
			p.Leak = leak
			off := ft.LeakageExperiment(p, cfg, *rounds, *samples, false, 81)
			on := ft.LeakageExperiment(p, cfg, *rounds, *samples, true, 82)
			fmt.Printf("%-10.1e %-10.1e %-16.4e %-16.4e\n", eps, leak, off.FailRate(), on.FailRate())
		}
	}
}

func cmdToric(args []string) {
	fs := flag.NewFlagSet("toric", flag.ExitOnError)
	samples := fs.Int("samples", 20000, "samples per point")
	decoder := fs.String("decoder", "uf", "decoder: greedy, exact (polynomial MWPM) or uf (union-find)")
	sizesFlag := fs.String("L", "3,5,7,9", "comma-separated code distances")
	big := fs.Bool("big", false, "extend the distance sweep to L=16 and L=32 (union-find territory)")
	seedF := fs.Uint64("seed", 91, "base RNG seed for the sweep (each cell advances it)")
	fs.Parse(args)
	kind, ok := toricDecoder(*decoder)
	if !ok {
		fmt.Fprintf(os.Stderr, "toric: unknown decoder %q (want greedy, exact or uf)\n", *decoder)
		os.Exit(2)
	}
	fmt.Printf("E17: toric-code passive memory (§7.1): logical failure vs distance L (%s decoder, seed %d)\n", *decoder, *seedF)
	fmt.Printf("%-8s", "p\\L")
	sizes := parseIntList(*sizesFlag)
	if *big {
		sizes = append(sizes, 16, 32)
	}
	for _, l := range sizes {
		fmt.Printf(" %-12d", l)
	}
	fmt.Println()
	seed := *seedF
	for _, p := range []float64{0.01, 0.03, 0.05, 0.08, 0.12} {
		fmt.Printf("%-8.2f", p)
		for _, l := range sizes {
			seed++
			r := toric.MemoryExperiment(l, p, kind, *samples, seed)
			fmt.Printf(" %-12.4e", r.FailRate())
		}
		fmt.Println()
	}
	fmt.Println("below threshold the failure falls like e^{-αL} (the paper's e^{-mL} tunneling scaling)")
}

func cmdSpacetime(args []string) {
	fs := flag.NewFlagSet("spacetime", flag.ExitOnError)
	sizes := fs.String("L", "4,8", "comma-separated code distances")
	rounds := fs.String("T", "L", "measurement rounds per shot: a number, or L for rounds = distance")
	fs.StringVar(rounds, "rounds", "L", "alias for -T")
	q := fs.Float64("q", -1, "measurement error probability (-1: track p, the sustained p=q sweep)")
	grid := fs.String("p", "0.01,0.015,0.02,0.025,0.03,0.04,0.05", "comma-separated data error probabilities")
	pe := fs.Float64("pe", 0, "data-qubit leakage (erasure) probability per edge per round")
	qe := fs.Float64("qe", 0, "lost-measurement probability per check per round")
	samples := fs.Int("samples", 4000, "Monte Carlo samples per point")
	dec := fs.String("decoder", "uf", "decoder: uf (weighted union-find) or exact (weighted blossom MWPM)")
	compare := fs.Bool("compare", true, "cross-check union-find against exact MWPM at the smallest distance")
	seedF := fs.Uint64("seed", 121, "base RNG seed for the sweep (each cell advances it)")
	fs.Parse(args)
	kind, ok := toricDecoder(*dec)
	if !ok || kind == toric.DecoderGreedy {
		fmt.Fprintf(os.Stderr, "spacetime: unknown decoder %q (want uf or exact)\n", *dec)
		os.Exit(2)
	}
	if *q > 1 || (*q < 0 && *q != -1) {
		fmt.Fprintf(os.Stderr, "spacetime: bad -q %v (want a probability, or -1 to track p)\n", *q)
		os.Exit(2)
	}
	erased := *pe > 0 || *qe > 0
	if erased && kind != toric.DecoderUnionFind {
		fmt.Fprintln(os.Stderr, "spacetime: erasure decoding is union-find only (-decoder uf)")
		os.Exit(2)
	}
	ls := parseIntList(*sizes)
	ps := parseFloatList(*grid)
	roundsOf := func(l int) int { return l }
	if *rounds != "L" {
		r, err := strconv.Atoi(*rounds)
		if err != nil || r < 1 {
			fmt.Fprintf(os.Stderr, "spacetime: bad -T %q\n", *rounds)
			os.Exit(2)
		}
		roundsOf = func(int) int { return r }
	}
	qOf := func(p float64) float64 { return p }
	if *q >= 0 {
		qOf = func(float64) float64 { return *q }
	}
	// The exact-MWPM cross-check column only makes sense against another
	// decoder and only pays off where the matcher is cheap; large
	// distances are union-find territory.
	const compareMaxL = 8
	if kind == toric.DecoderExact || erased {
		*compare = false
	}
	if *compare && ls[0] > compareMaxL {
		fmt.Printf("(skipping exact cross-check: L=%d > %d is union-find territory)\n", ls[0], compareMaxL)
		*compare = false
	}
	runPoint := func(l, rounds int, p, q float64, k toric.DecoderKind, seed uint64) spacetime.Result {
		if erased {
			return spacetime.ErasedMemory(l, rounds, p, q, *pe, *qe, *samples, seed)
		}
		return spacetime.Memory(l, rounds, p, q, k, *samples, seed)
	}
	fmt.Printf("E22: noisy syndrome extraction (%s decoder, seed %d): T rounds of measurement flipping with q,\n", *dec, *seedF)
	fmt.Println("     defects = consecutive-round syndrome differences, decoded over the weighted 3D volume")
	if erased {
		fmt.Printf("     erasure channels: leaked data qubits pe=%g, lost measurements qe=%g (peeling-aware decode)\n", *pe, *qe)
	}
	fmt.Printf("%-8s", "p\\L")
	for _, l := range ls {
		fmt.Printf(" %-12s", fmt.Sprintf("%d (T=%d)", l, roundsOf(l)))
	}
	if *compare {
		fmt.Printf(" %-12s", fmt.Sprintf("%d exact", ls[0]))
	}
	fmt.Println()
	rates := make([][]float64, len(ps))
	seed := *seedF
	for i, p := range ps {
		rates[i] = make([]float64, len(ls))
		fmt.Printf("%-8.3f", p)
		for j, l := range ls {
			seed++
			r := runPoint(l, roundsOf(l), p, qOf(p), kind, seed)
			rates[i][j] = r.FailRate()
			fmt.Printf(" %-12.4e", r.FailRate())
		}
		if *compare {
			r := runPoint(ls[0], roundsOf(ls[0]), p, qOf(p), toric.DecoderExact, seed+1000)
			fmt.Printf(" %-12.4e", r.FailRate())
		}
		fmt.Println()
	}
	if len(ls) >= 2 {
		lo, hi := 0, len(ls)-1
		small := make([]float64, len(ps))
		large := make([]float64, len(ps))
		for i := range ps {
			small[i] = rates[i][lo]
			large[i] = rates[i][hi]
		}
		cross := spacetime.CrossingEstimate(ps, small, large)
		switch {
		case math.IsNaN(cross):
			fmt.Printf("\nno L=%d / L=%d crossing on this grid (threshold outside it)\n", ls[lo], ls[hi])
		case *q >= 0:
			fmt.Printf("\nthreshold at fixed q=%g (L=%d vs L=%d failure curves cross): p ≈ %.3f\n", *q, ls[lo], ls[hi], cross)
		default:
			fmt.Printf("\nsustained threshold (L=%d vs L=%d failure curves cross): p = q ≈ %.3f\n", ls[lo], ls[hi], cross)
		}
		fmt.Println("below the crossing, larger distance + more rounds help; above, they hurt")
	}
}

func cmdStream(args []string) {
	fs := flag.NewFlagSet("stream", flag.ExitOnError)
	sizes := fs.String("L", "4,8", "comma-separated code distances")
	rounds := fs.String("T", "4L", "noisy rounds per shot: a number, or 4L for rounds = 4·distance")
	window := fs.Int("window", 0, "sliding-window height in rounds (0: the 2L default)")
	commit := fs.Int("commit", 0, "rounds committed per slide (0: half the window)")
	q := fs.Float64("q", -1, "measurement error probability (-1: track p, the sustained p=q sweep)")
	grid := fs.String("p", "0.01,0.015,0.02,0.025,0.03,0.04,0.05", "comma-separated data error probabilities")
	samples := fs.Int("samples", 4000, "Monte Carlo samples per point")
	volume := fs.Bool("volume", true, "cross-check the smallest distance against the whole-volume decode")
	seedF := fs.Uint64("seed", 151, "base RNG seed for the sweep (each cell advances it)")
	startProf := profileFlags(fs)
	fs.Parse(args)
	defer startProf()()
	if *q > 1 || (*q < 0 && *q != -1) {
		fmt.Fprintf(os.Stderr, "stream: bad -q %v (want a probability, or -1 to track p)\n", *q)
		os.Exit(2)
	}
	if *window == 1 {
		fmt.Fprintln(os.Stderr, "stream: a sliding window must hold at least two layers (-window ≥ 2)")
		os.Exit(2)
	}
	ls := parseIntList(*sizes)
	ps := parseFloatList(*grid)
	roundsOf := func(l int) int { return 4 * l }
	if *rounds != "4L" {
		r, err := strconv.Atoi(*rounds)
		if err != nil || r < 1 {
			fmt.Fprintf(os.Stderr, "stream: bad -T %q\n", *rounds)
			os.Exit(2)
		}
		roundsOf = func(int) int { return r }
	}
	qOf := func(p float64) float64 { return p }
	if *q >= 0 {
		qOf = func(float64) float64 { return *q }
	}
	winOf := func(l int) (int, int) {
		w, c := stream.DefaultWindow(l)
		if *window > 0 {
			w = *window
			c = w / 2
			if c < 1 {
				c = 1
			}
		}
		if *commit != 0 {
			c = *commit
		}
		return w, c
	}
	// Validate every window shape up front so a bad -window/-commit pair
	// fails with the stream package's message, not mid-sweep.
	for _, l := range ls {
		w, c := winOf(l)
		if _, err := stream.NewWindow(l, w, c, 1, 1); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
	}
	fmt.Println("E23: streaming windowed decoding — syndrome layers decode as they arrive through a")
	fmt.Printf("     sliding W-round window with a commit region; memory is O(L²·W), independent of T (seed %d)\n", *seedF)
	fmt.Printf("%-8s", "p\\L")
	for _, l := range ls {
		w, c := winOf(l)
		fmt.Printf(" %-16s", fmt.Sprintf("%d (T=%d W=%d/%d)", l, roundsOf(l), w, c))
	}
	if *volume {
		fmt.Printf(" %-12s", fmt.Sprintf("%d volume", ls[0]))
	}
	fmt.Println()
	rates := make([][]float64, len(ps))
	seed := *seedF
	for i, p := range ps {
		rates[i] = make([]float64, len(ls))
		fmt.Printf("%-8.3f", p)
		for j, l := range ls {
			seed++
			w, c := winOf(l)
			r, err := stream.Memory(l, roundsOf(l), p, qOf(p), w, c, *samples, seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%v\n", err)
				os.Exit(2)
			}
			rates[i][j] = r.FailRate()
			fmt.Printf(" %-16.4e", r.FailRate())
		}
		if *volume {
			r := spacetime.Memory(ls[0], roundsOf(ls[0]), p, qOf(p), toric.DecoderUnionFind, *samples, seed+2000)
			fmt.Printf(" %-12.4e", r.FailRate())
		}
		fmt.Println()
	}
	if len(ls) >= 2 {
		small := make([]float64, len(ps))
		large := make([]float64, len(ps))
		for i := range ps {
			small[i] = rates[i][0]
			large[i] = rates[i][len(ls)-1]
		}
		cross := spacetime.CrossingEstimate(ps, small, large)
		if math.IsNaN(cross) {
			fmt.Printf("\nno L=%d / L=%d crossing on this grid (threshold outside it)\n", ls[0], ls[len(ls)-1])
		} else {
			fmt.Printf("\nstreaming sustained threshold (L=%d vs L=%d curves cross): p = q ≈ %.3f\n", ls[0], ls[len(ls)-1], cross)
		}
	}
	fmt.Println("windowed accuracy matches the whole-volume decode at W ≥ 2L; the window never grows with T")
}

func cmdCircuit(args []string) {
	fs := flag.NewFlagSet("circuit", flag.ExitOnError)
	sizes := fs.String("L", "4,8", "comma-separated code distances")
	rounds := fs.String("T", "L", "extraction rounds per shot: a number, or L for rounds = distance")
	grid := fs.String("p", "0.002,0.004,0.006,0.008,0.01,0.012", "comma-separated uniform per-location error rates eps")
	window := fs.Int("window", 0, "decode through the streaming pipeline with this sliding-window height (0: whole-volume decode)")
	commit := fs.Int("commit", 0, "rounds committed per slide when -window is set (0: half the window)")
	samples := fs.Int("samples", 4000, "Monte Carlo samples per point")
	dec := fs.String("decoder", "uf", "decoder: uf (weighted union-find) or exact (circuit-metric blossom MWPM)")
	compare := fs.Bool("compare", true, "cross-check union-find against exact MWPM at the smallest distance")
	leak := fs.Float64("leak", 0, "per-gate leakage probability; leaked qubits are harvested as erasures")
	bias := fs.Float64("bias", 0, "noise-bias ratio η = pZ/(pX+pY) of each fault's Pauli draw (0: unbiased)")
	correlated := fs.Bool("correlated", false, "joint two-sector decode: reprice the dual sector from the committed primal correction")
	blind := fs.Bool("blind", false, "with -leak: discard the erasure side information (the control arm of the aware-vs-blind ablation)")
	schedule := fs.String("schedule", "default", "CNOT extraction schedule: default (bent hook pairs) or hookpar (parallel-last pairs)")
	seedF := fs.Uint64("seed", 181, "base RNG seed for the sweep (each cell advances it)")
	startProf := profileFlags(fs)
	fs.Parse(args)
	defer startProf()()
	kind, ok := toricDecoder(*dec)
	if !ok || kind == toric.DecoderGreedy {
		fmt.Fprintf(os.Stderr, "circuit: unknown decoder %q (want uf or exact)\n", *dec)
		os.Exit(2)
	}
	if *schedule != "default" && *schedule != "hookpar" {
		fmt.Fprintf(os.Stderr, "circuit: unknown schedule %q (want default or hookpar)\n", *schedule)
		os.Exit(2)
	}
	if *blind && *leak <= 0 {
		fmt.Fprintln(os.Stderr, "circuit: -blind is the control arm of a leakage ablation — it needs -leak > 0")
		os.Exit(2)
	}
	// Any of these switch the sweep onto the erasure/correlated pipeline,
	// which prices and decodes with union-find only.
	needsOpts := *leak > 0 || *bias > 0 || *correlated || *schedule != "default"
	if needsOpts && kind != toric.DecoderUnionFind {
		fmt.Fprintln(os.Stderr, "circuit: -leak/-bias/-correlated/-schedule decode with union-find (-decoder uf)")
		os.Exit(2)
	}
	opts := spacetime.DecodeOptions{ErasureAware: *leak > 0 && !*blind, Correlated: *correlated}
	streaming := *window > 0
	if streaming && *window < 2 {
		fmt.Fprintln(os.Stderr, "circuit: a sliding window must hold at least two layers (-window ≥ 2)")
		os.Exit(2)
	}
	if streaming && kind != toric.DecoderUnionFind {
		fmt.Fprintln(os.Stderr, "circuit: the streaming pipeline decodes with union-find (-decoder uf)")
		os.Exit(2)
	}
	if streaming {
		if *commit == 0 {
			*commit = *window / 2
			if *commit < 1 {
				*commit = 1
			}
		}
		if *commit < 1 || *commit >= *window {
			fmt.Fprintf(os.Stderr, "circuit: -commit must stay in [1, window-1] (got -commit %d with -window %d)\n", *commit, *window)
			os.Exit(2)
		}
	}
	ls := parseIntList(*sizes)
	ps := parseFloatList(*grid)
	roundsOf := func(l int) int { return l }
	if *rounds != "L" {
		r, err := strconv.Atoi(*rounds)
		if err != nil || r < 1 {
			fmt.Fprintf(os.Stderr, "circuit: bad -T %q\n", *rounds)
			os.Exit(2)
		}
		roundsOf = func(int) int { return r }
	}
	if kind == toric.DecoderExact || streaming || needsOpts {
		*compare = false
	}
	const compareMaxL = 8
	if *compare && ls[0] > compareMaxL {
		fmt.Printf("(skipping exact cross-check: L=%d > %d is union-find territory)\n", ls[0], compareMaxL)
		*compare = false
	}
	codeOf := func(l int) surface.Code {
		if *schedule == "hookpar" {
			return toric.HookParallel(l)
		}
		return toric.Cached(l)
	}
	runPoint := func(l, rounds int, eps float64, k toric.DecoderKind, seed uint64) float64 {
		P := noise.Uniform(eps)
		P.Leak = *leak
		P.Bias = *bias
		if streaming {
			var r stream.Result
			var err error
			if needsOpts {
				r, err = stream.CodeCircuitMemoryOpts(codeOf(l), rounds, P, *window, *commit, *samples, seed, opts)
			} else {
				r, err = stream.CircuitMemory(l, rounds, P, *window, *commit, *samples, seed)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "circuit: %v\n", err)
				os.Exit(2)
			}
			return r.FailRate()
		}
		if needsOpts {
			r, err := spacetime.CodeCircuitMemoryOpts(codeOf(l), rounds, P, *samples, seed, opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "circuit: %v\n", err)
				os.Exit(2)
			}
			return r.FailRate()
		}
		return spacetime.CircuitMemory(l, rounds, P, k, *samples, seed).FailRate()
	}
	fmt.Printf("E24: circuit-level syndrome extraction (%s decoder, seed %d): the full extraction circuit per round\n", *dec, *seedF)
	fmt.Println("     (ancilla per check, PrepZ/PrepX, 4 CNOTs, MeasZ/MeasX) with faults at every location;")
	fmt.Println("     mid-round CNOT faults decode over correlated diagonal space-time edges")
	if *leak > 0 {
		arm := "erasure-aware: leaked qubits decode as located faults"
		if *blind {
			arm = "erasure-BLIND control arm: leakage injected, side information discarded"
		}
		fmt.Printf("     leakage %g per gate — %s\n", *leak, arm)
	}
	if *bias > 0 {
		fmt.Printf("     biased noise η=%g (pZ/(pX+pY) of each fault's Pauli draw)\n", *bias)
	}
	if *correlated {
		fmt.Println("     correlated decode: dual sector repriced from the committed primal correction (Y components)")
	}
	if *schedule != "default" {
		fmt.Printf("     extraction schedule: %s (parallel-last hook pairs — axis-aligned hook defects)\n", *schedule)
	}
	if streaming {
		fmt.Printf("     streaming pipeline: W=%d sliding windows, commit %d\n", *window, *commit)
	}
	fmt.Printf("%-8s", "eps\\L")
	for _, l := range ls {
		fmt.Printf(" %-12s", fmt.Sprintf("%d (T=%d)", l, roundsOf(l)))
	}
	if *compare {
		fmt.Printf(" %-12s", fmt.Sprintf("%d exact", ls[0]))
	}
	fmt.Println()
	rates := make([][]float64, len(ps))
	seed := *seedF
	for i, eps := range ps {
		rates[i] = make([]float64, len(ls))
		fmt.Printf("%-8.4f", eps)
		for j, l := range ls {
			seed++
			rates[i][j] = runPoint(l, roundsOf(l), eps, kind, seed)
			fmt.Printf(" %-12.4e", rates[i][j])
		}
		if *compare {
			fmt.Printf(" %-12.4e", runPoint(ls[0], roundsOf(ls[0]), eps, toric.DecoderExact, seed+3000))
		}
		fmt.Println()
	}
	if len(ls) >= 2 {
		small := make([]float64, len(ps))
		large := make([]float64, len(ps))
		for i := range ps {
			small[i] = rates[i][0]
			large[i] = rates[i][len(ls)-1]
		}
		cross := spacetime.CrossingEstimate(ps, small, large)
		if math.IsNaN(cross) {
			fmt.Printf("\nno L=%d / L=%d crossing on this grid (threshold outside it)\n", ls[0], ls[len(ls)-1])
		} else {
			fmt.Printf("\ncircuit-level sustained threshold (L=%d vs L=%d curves cross): eps ≈ %.4f\n", ls[0], ls[len(ls)-1], cross)
			fmt.Println("well below the phenomenological p = q ≈ 0.027: every location faults, and CNOTs correlate the defects")
		}
	}
}

// cmdCodes sweeps the three surface-code families through the same
// circuit-level pipeline (one detector-graph contract, per-code CNOT
// schedules) and sets a concatenated-Steane row beside them: measured
// threshold, qubit overhead per distance, and decode speed in one
// table.
func cmdCodes(args []string) {
	fs := flag.NewFlagSet("codes", flag.ExitOnError)
	d1f := fs.Int("d1", 3, "smaller code distance (threshold crossing)")
	d2f := fs.Int("d2", 5, "larger code distance (odd, so every family supports it)")
	grid := fs.String("p", "0.003,0.005,0.007,0.009,0.011", "uniform per-location eps grid for the crossing")
	samples := fs.Int("samples", 1500, "Monte Carlo samples per grid point")
	steane := fs.Bool("steane", true, "include the concatenated-Steane comparison row")
	seedF := fs.Uint64("seed", 271, "base RNG seed (each family offsets it by 100)")
	fs.Parse(args)
	d1, d2 := *d1f, *d2f
	if d1 < 3 || d1%2 == 0 || d2 <= d1 || d2%2 == 0 {
		fmt.Fprintln(os.Stderr, "codes: distances must be odd with 3 <= d1 < d2 (the rotated family needs odd distances)")
		os.Exit(2)
	}
	ps := parseFloatList(*grid)
	families := []struct {
		name string
		make func(d int) surface.Code
	}{
		{"toric", func(d int) surface.Code { return toric.Cached(d) }},
		{"planar", surface.Planar},
		{"rotated", surface.Rotated},
	}
	fmt.Printf("E27: surface-code families behind one detector-graph contract (seed %d) — every family runs\n", *seedF)
	fmt.Println("     its own circuit-level extraction schedule (T = d rounds) through the same")
	fmt.Println("     diagonal-edge decoding volume, union-find decoded; open boundaries ground on")
	fmt.Println("     the virtual node")
	fmt.Printf("\n%-10s", "eps\\fam")
	for _, f := range families {
		fmt.Printf(" %-12s %-12s", fmt.Sprintf("%s d=%d", f.name, d1), fmt.Sprintf("%s d=%d", f.name, d2))
	}
	fmt.Println()
	type row struct {
		name       string
		q1, q2     int // data qubits at d1, d2
		tot1, tot2 int // data + measure ancillas
		thresh     float64
		usPerShotR float64
	}
	rows := make([]row, len(families))
	curves := make([][2][]float64, len(families)) // [family][small/large][grid]
	for i, f := range families {
		c1, c2 := f.make(d1), f.make(d2)
		rows[i] = row{
			name: f.name,
			q1:   c1.Qubits(), q2: c2.Qubits(),
			tot1: c1.Qubits() + 2*c1.Checks(), tot2: c2.Qubits() + 2*c2.Checks(),
		}
		curves[i] = [2][]float64{make([]float64, len(ps)), make([]float64, len(ps))}
		var elapsed time.Duration
		seed := *seedF + uint64(100*i)
		for j, eps := range ps {
			P := noise.Uniform(eps)
			curves[i][0][j] = spacetime.CodeCircuitMemory(c1, d1, P, *samples, seed+uint64(2*j)).FailRate()
			t0 := time.Now()
			curves[i][1][j] = spacetime.CodeCircuitMemory(c2, d2, P, *samples, seed+uint64(2*j+1)).FailRate()
			elapsed += time.Since(t0)
		}
		rows[i].thresh = spacetime.CrossingEstimate(ps, curves[i][0], curves[i][1])
		rows[i].usPerShotR = float64(elapsed.Microseconds()) / float64(len(ps)**samples*d2)
	}
	for j, eps := range ps {
		fmt.Printf("%-10.4f", eps)
		for i := range families {
			fmt.Printf(" %-12.4e %-12.4e", curves[i][0][j], curves[i][1][j])
		}
		fmt.Println()
	}
	fmt.Printf("\n%-10s %-14s %-14s %-12s %-16s\n",
		"family", fmt.Sprintf("qubits(d=%d)", d1), fmt.Sprintf("qubits(d=%d)", d2), "threshold", "µs/shot·round")
	for _, r := range rows {
		th := "none on grid"
		if !math.IsNaN(r.thresh) {
			th = fmt.Sprintf("%.4f", r.thresh)
		}
		fmt.Printf("%-10s %-14s %-14s %-12s %-16.2f\n",
			r.name, fmt.Sprintf("%d (+%d anc)", r.q1, r.tot1-r.q1), fmt.Sprintf("%d (+%d anc)", r.q2, r.tot2-r.q2),
			th, r.usPerShotR)
	}
	if *steane {
		// The non-topological yardstick: Steane's [[7,1,3]] code under
		// concatenation (internal/code + internal/concat). Distance grows
		// as 3^level while qubits grow as 7^level, so the overhead per
		// distance is d^(ln7/ln3) ≈ d^1.77 — polynomially worse than any
		// surface family — but the threshold is per gate on a
		// fully-connected machine, not per location on a 2D patch.
		st := code.Steane()
		flow := concat.PaperFlow()
		lv1 := concat.BlockSize(1)
		lv2 := concat.BlockSize(2)
		fmt.Printf("%-10s %-14s %-14s %-12s %-16s\n",
			"steane^L", fmt.Sprintf("%d (d=3)", lv1), fmt.Sprintf("%d (d=9)", lv2),
			fmt.Sprintf("%.4f", flow.Threshold()), "(exRec harness)")
		fmt.Printf("\nconcatenated [[%d,%d,3]] Steane: distance 3^level vs 7^level qubits — overhead\n",
			st.N, st.K)
		fmt.Printf("d^1.77 per logical qubit against the planar d^2/rotated d^2 patch; its %.3g\n", flow.Threshold())
		fmt.Println("threshold is the Eq. 33 per-block-cycle flow value, not a per-location rate")
	}
	fmt.Println("\nqubit overhead per distance: toric 2d² data on a torus, planar d²+(d−1)² on a")
	fmt.Println("patch, rotated d² — the rotated code halves the planar qubit bill at equal d")
}

// serveSessionCfg builds the session configuration the serve/sessions
// commands share.
func serveSessionCfg(model string, l, lanes int, p float64) (server.SessionConfig, bool) {
	switch model {
	case "circuit":
		return server.CircuitLevel(l, lanes, noise.Uniform(p)), true
	case "phenom":
		return server.Phenomenological(l, lanes, p, p), true
	}
	return server.SessionConfig{}, false
}

// serveFeed builds the matching syndrome-layer source.
func serveFeed(cfg server.SessionConfig, p float64, seed uint64) spacetime.LayerFeed {
	smp := frame.NewAggregateSampler(seed, 5)
	if cfg.WD > 0 {
		return spacetime.NewCircuitLayerSource(cfg.L, noise.Uniform(p), cfg.Lanes, smp)
	}
	return spacetime.NewLayerSource(cfg.L, p, p, cfg.Lanes, smp)
}

func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	nSessions := fs.Int("sessions", 16, "concurrent logical-qubit sessions")
	size := fs.Int("L", 8, "code distance")
	rounds := fs.Int("T", 128, "syndrome rounds streamed per session")
	lanes := fs.Int("lanes", 64, "Monte Carlo lanes per session (64 shots per machine word)")
	model := fs.String("model", "circuit", "noise model: circuit (uniform per-location eps) or phenom (p = q)")
	p := fs.Float64("p", 0.003, "error rate: per-location eps (circuit) or p = q (phenom)")
	workers := fs.Int("workers", 0, "decode workers in the shared pool (0: GOMAXPROCS)")
	depth := fs.Int("queue", 16, "per-session ingest queue depth in rounds")
	coalesce := fs.Bool("coalesce", false, "merge same-graph decode batches from concurrent sessions into single pool submissions")
	adapt := fs.Bool("adapt", false, "adaptive windows: grow/shrink W with the observed defect density")
	startProf := profileFlags(fs)
	fs.Parse(args)
	defer startProf()()
	cfg, ok := serveSessionCfg(*model, *size, *lanes, *p)
	if !ok {
		fmt.Fprintf(os.Stderr, "serve: unknown model %q (want circuit or phenom)\n", *model)
		os.Exit(2)
	}
	if *nSessions < 1 || *rounds < 1 {
		fmt.Fprintln(os.Stderr, "serve: -sessions and -T must be positive")
		os.Exit(2)
	}
	if *adapt {
		cfg.Adapt = &server.AdaptConfig{MinWindow: 4, MaxWindow: 4 * *size, GrowAt: 0.05, ShrinkAt: 0.005}
		if cfg.Window < 4 {
			cfg.Window = 4
		}
	}
	srv := server.New(server.Config{Workers: *workers, QueueDepth: *depth, Coalesce: *coalesce})
	fmt.Printf("E25: decode server — %d concurrent %s sessions, L=%d, %d lanes, %d rounds each\n",
		*nSessions, *model, *size, *lanes, *rounds)

	handles := make([]*server.Session, *nSessions)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *nSessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := srv.Open(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "serve: open session %d: %v\n", i, err)
				os.Exit(2)
			}
			handles[i] = s
			feed := serveFeed(cfg, *p, 9000+uint64(i))
			nc := *size * *size
			layerX := bits.NewVecs(nc, *lanes)
			layerZ := bits.NewVecs(nc, *lanes)
			for r := 0; r < *rounds; r++ {
				feed.NextLayers(layerX, layerZ)
				if err := s.Submit(layerX, layerZ); err != nil {
					fmt.Fprintf(os.Stderr, "serve: session %d round %d: %v\n", i, r, err)
					os.Exit(2)
				}
			}
			feed.CloseLayers(layerX, layerZ)
			if err := s.CloseWith(layerX, layerZ); err != nil {
				fmt.Fprintf(os.Stderr, "serve: close session %d: %v\n", i, err)
				os.Exit(2)
			}
			if _, err := s.Wait(); err != nil {
				fmt.Fprintf(os.Stderr, "serve: session %d: %v\n", i, err)
				os.Exit(2)
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	srv.Shutdown()

	fmt.Printf("\n%-5s %-8s %-10s %-9s %-8s %-10s %-10s %-10s %-10s\n",
		"id", "window", "committed", "defects", "density", "p50", "p90", "p99", "max")
	var agg []server.HistSnapshot
	for _, s := range handles {
		st := s.Stats()
		agg = append(agg, st.Latency)
		fmt.Printf("%-5d %-8d %-10d %-9d %-8.4f %-10v %-10v %-10v %-10v\n",
			st.ID, st.Window, st.Committed, st.Defects, st.DefectDensity,
			st.Latency.P50, st.Latency.P90, st.Latency.P99, st.Latency.Max)
	}
	total := *nSessions * *rounds
	fmt.Printf("\nsustained throughput: %d rounds across %d sessions in %v = %.0f rounds/s (%.2e lane-rounds/s)\n",
		total, *nSessions, wall.Round(time.Millisecond), float64(total)/wall.Seconds(),
		float64(total)*float64(*lanes)/wall.Seconds())
	if *coalesce {
		cst := srv.CoalesceStats()
		fmt.Printf("batch coalescing: %d session batches in %d pool submissions — occupancy %.2f batches/submission, %.1f shots/submission (max group %d)\n",
			cst.Batches, cst.Flushes, cst.Occupancy, cst.ShotsPer, cst.MaxGroup)
	}

	// Aggregate commit-latency histogram (enqueue → commit, all sessions).
	merged := map[time.Duration]uint64{}
	var grand uint64
	for _, h := range agg {
		for _, b := range h.Buckets {
			merged[b.UpTo] += b.Count
			grand += b.Count
		}
	}
	ups := make([]time.Duration, 0, len(merged))
	for up := range merged {
		ups = append(ups, up)
	}
	sort.Slice(ups, func(i, j int) bool { return ups[i] < ups[j] })
	fmt.Println("\naggregate commit-latency histogram:")
	for _, up := range ups {
		n := merged[up]
		bar := strings.Repeat("#", int(1+59*n/grand))
		fmt.Printf("  ≤ %-10v %8d  %s\n", up, n, bar)
	}
	fmt.Println("\ncommit latency is the real-time figure of merit: the decoder must keep")
	fmt.Println("pace with syndrome extraction for every logical qubit simultaneously")
}

func cmdSessions(args []string) {
	fs := flag.NewFlagSet("sessions", flag.ExitOnError)
	churners := fs.Int("sessions", 6, "concurrent session slots churning open/stream/close")
	workers := fs.Int("workers", 0, "decode workers in the shared pool (0: GOMAXPROCS)")
	snaps := fs.Int("snapshots", 3, "how many live snapshots to print")
	fs.Parse(args)
	srv := server.New(server.Config{Workers: *workers})
	fmt.Println("E25: decode-server observability — sessions opening, streaming, and closing")
	fmt.Println("     while Snapshot reads their stats without disturbing the pipelines")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < *churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for it := 0; ; it++ {
				select {
				case <-stop:
					return
				default:
				}
				model := "phenom"
				if (c+it)%2 == 0 {
					model = "circuit"
				}
				p := 0.002 + 0.004*float64(c%3)
				if model == "phenom" {
					p = 0.01 + 0.01*float64(c%3)
				}
				cfg, _ := serveSessionCfg(model, 4+2*(c%2), 64, p)
				s, err := srv.Open(cfg)
				if err != nil {
					return // draining
				}
				feed := serveFeed(cfg, p, 9500+uint64(16*c+it))
				nc := cfg.L * cfg.L
				layerX := bits.NewVecs(nc, cfg.Lanes)
				layerZ := bits.NewVecs(nc, cfg.Lanes)
				for r := 0; r < 40; r++ {
					feed.NextLayers(layerX, layerZ)
					if s.Submit(layerX, layerZ) != nil {
						return
					}
					time.Sleep(2 * time.Millisecond) // a quantum clock, not a tight loop
				}
				feed.CloseLayers(layerX, layerZ)
				if s.CloseWith(layerX, layerZ) != nil {
					return
				}
				if _, err := s.Wait(); err != nil {
					return
				}
			}
		}(c)
	}
	for i := 0; i < *snaps; i++ {
		time.Sleep(60 * time.Millisecond)
		stats := srv.Snapshot()
		fmt.Printf("\nsnapshot %d: %d open sessions\n", i+1, len(stats))
		fmt.Printf("  %-4s %-8s %-4s %-8s %-8s %-10s %-9s %-10s\n",
			"id", "model", "L", "window", "rounds", "committed", "density", "p50 lat")
		for _, st := range stats {
			model := "phenom"
			if st.Circuit {
				model = "circuit"
			}
			fmt.Printf("  %-4d %-8s %-4d %-8d %-8d %-10d %-9.4f %-10v\n",
				st.ID, model, st.L, st.Window, st.Rounds, st.Committed, st.DefectDensity, st.Latency.P50)
		}
	}
	close(stop)
	wg.Wait()
	srv.Shutdown()
	fmt.Printf("\nchurn stopped, server drained: %d sessions remain open\n", len(srv.Snapshot()))
}

// parseIntList parses a comma-separated list of lattice sizes.
func parseIntList(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 2 {
			fmt.Fprintf(os.Stderr, "bad list entry %q\n", f)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

// parseFloatList parses a comma-separated list of probabilities.
func parseFloatList(s string) []float64 {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v < 0 || v > 1 {
			fmt.Fprintf(os.Stderr, "bad list entry %q\n", f)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

// toricDecoder maps a CLI name to a decoder kind.
func toricDecoder(name string) (toric.DecoderKind, bool) {
	switch name {
	case "greedy":
		return toric.DecoderGreedy, true
	case "exact":
		return toric.DecoderExact, true
	case "uf", "unionfind":
		return toric.DecoderUnionFind, true
	}
	return 0, false
}

func cmdThermal(args []string) {
	fs := flag.NewFlagSet("thermal", flag.ExitOnError)
	samples := fs.Int("samples", 20000, "samples per point")
	l := fs.Int("L", 7, "lattice size")
	decoder := fs.String("decoder", "exact", "decoder: greedy, exact or uf")
	seedF := fs.Uint64("seed", 93, "base RNG seed (each Δ/T row advances it)")
	fs.Parse(args)
	kind, ok := toricDecoder(*decoder)
	if !ok {
		fmt.Fprintf(os.Stderr, "thermal: unknown decoder %q (want greedy, exact or uf)\n", *decoder)
		os.Exit(2)
	}
	fmt.Printf("E18: thermal anyon plasma on L=%d (§7.1, seed %d): flips at p0·e^{-Δ/T}\n", *l, *seedF)
	fmt.Printf("%-8s %-14s %-14s\n", "Δ/T", "flip prob", "logical fail")
	for i, dt := range []float64{1, 2, 3, 4, 5, 6} {
		r := toric.ThermalMemory(*l, 0.5, dt, kind, *samples, *seedF+uint64(i))
		fmt.Printf("%-8.1f %-14.4e %-14.4e\n", dt, r.FlipProb, r.FailRate())
	}
}

func cmdInterferometer(args []string) {
	fs := flag.NewFlagSet("interferometer", flag.ExitOnError)
	eta := fs.Float64("eta", 0.2, "per-pass readout error")
	fs.Parse(args)
	fmt.Printf("E19: interferometric flux measurement, per-pass error η=%.2f (Figs. 18/22)\n", *eta)
	fmt.Printf("%-8s %-16s %-16s\n", "passes", "analytic err", "Monte Carlo")
	rng := rand.New(rand.NewPCG(95, 96))
	for _, n := range []int{1, 3, 7, 15, 31, 63} {
		an := anyon.InterferometerConfidence(*eta, n)
		wrong := 0
		const trials = 100000
		for i := 0; i < trials; i++ {
			if anyon.NoisyFluxMeasurement(1, *eta, n, rng) {
				wrong++
			}
		}
		fmt.Printf("%-8d %-16.4e %-16.4e\n", n, an, float64(wrong)/trials)
	}
	fmt.Println("repetition drives the readout error down exponentially — measurement is fault tolerant")
}

func cmdAnyon(args []string) {
	fs := flag.NewFlagSet("anyon", flag.ExitOnError)
	fs.Parse(args)
	enc := anyon.NewA5Encoding()
	fmt.Println("E20: nonabelian fluxon logic over A5 (§7.3-§7.4)")
	fmt.Printf("computational fluxes: u0=%v u1=%v (Eq. 45); NOT conjugator v=%v\n", enc.U0, enc.U1, enc.V)
	fmt.Printf("group: |A5|=%d, perfect=%v, solvable=%v (universality needs nonsolvability)\n",
		enc.G.Order(), enc.G.IsPerfect(), enc.G.IsSolvable())
	w, err := enc.FindToffoliWitness()
	if err != nil {
		fmt.Println("witness search failed:", err)
		return
	}
	fmt.Printf("Toffoli word found: %d elementary pull-throughs (ref. 65 quotes 16)\n", w.PullCost())
	rng := rand.New(rand.NewPCG(97, 98))
	fmt.Println("truth table (a b c -> a b c⊕ab):")
	for in := 0; in < 8; in++ {
		r := anyon.NewRegister(enc.G, 3, enc.U0)
		for q := 0; q < 3; q++ {
			if in>>uint(q)&1 == 1 {
				enc.NOT(r, q)
			}
		}
		enc.Toffoli(r, w, 0, 1, 2)
		out := [3]int{}
		for q := 0; q < 3; q++ {
			out[q], _ = enc.Bit(r.MeasureFlux(q, rng))
		}
		fmt.Printf("  %d%d%d -> %d%d%d\n", in&1, in>>1&1, in>>2&1, out[0], out[1], out[2])
	}
}
